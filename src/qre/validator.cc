#include "qre/validator.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/interrupt.h"
#include "common/thread_pool.h"
#include "engine/block_executor.h"
#include "engine/executor.h"

namespace fastqre {

const char* CandidateOutcomeToString(CandidateOutcome outcome) {
  switch (outcome) {
    case CandidateOutcome::kGenerating: return "generating";
    case CandidateOutcome::kMissingTuples: return "missing-tuples";
    case CandidateOutcome::kExtraTuples: return "extra-tuples";
    case CandidateOutcome::kIncoherentWalk: return "incoherent-walk";
    case CandidateOutcome::kBudgetExhausted: return "budget-exhausted";
    case CandidateOutcome::kError: return "error";
  }
  return "unknown";
}

Validator::Validator(const Database* db, const Table* rout,
                     const TupleSet* rout_set, const ColumnMapping* mapping,
                     const std::vector<Walk>* walks, const QreOptions* options,
                     Feedback* feedback, QreStats* stats, WalkCache* walk_cache,
                     std::function<bool()> budget_exceeded, ExecPolicy policy)
    : db_(db),
      rout_(rout),
      rout_set_(rout_set),
      mapping_(mapping),
      walks_(walks),
      options_(options),
      feedback_(feedback),
      stats_(stats),
      walk_cache_(walk_cache),
      budget_exceeded_(std::move(budget_exceeded)),
      policy_(policy) {}

Validator::Execution Validator::PrepareExecution(
    const CandidateQuery& candidate) {
  Execution exec;
  if (walk_cache_ == nullptr || candidate.walk_ids.empty()) {
    exec.query = candidate.query;
    return exec;
  }
  std::vector<const Walk*> group;
  group.reserve(candidate.walk_ids.size());
  for (int id : candidate.walk_ids) group.push_back(&(*walks_)[id]);
  std::vector<bool> materialized(group.size(), false);
  bool any = false;
  for (size_t i = 0; i < group.size(); ++i) {
    const Walk& w = *group[i];
    if (w.length() < 2) continue;  // direct join: nothing to substitute
    WalkSignature sig = CanonicalWalkSignature(*db_, w);
    WalkCache::Handle h =
        walk_cache_->Acquire(*db_, sig, stats_, budget_exceeded_);
    if (!h) continue;  // not admitted / being built / interrupted
    VirtualJoin vj;
    vj.a = static_cast<InstanceId>(w.from_instance);
    vj.col_a = sig.from_col;
    vj.b = static_cast<InstanceId>(w.to_instance);
    vj.col_b = sig.to_col;
    vj.a_to_b = sig.flipped ? &h->reverse : &h->forward;
    vj.b_to_a = sig.flipped ? &h->forward : &h->reverse;
    // Key domains for SIP (DESIGN.md §13); the executor only consults them
    // when policy_.use_sip is on.
    vj.a_domain = sig.flipped ? &h->reverse_domain : &h->forward_domain;
    vj.b_domain = sig.flipped ? &h->forward_domain : &h->reverse_domain;
    exec.vjoins.push_back(vj);
    exec.pins.push_back(std::move(h));
    materialized[i] = true;
    any = true;
  }
  // ComposeQueryFromWalksPartial numbers instance i as mapping instance i,
  // which is what the virtual joins above reference.
  exec.query = any ? ComposeQueryFromWalksPartial(*db_, *mapping_, group,
                                                  materialized)
                   : candidate.query;
  return exec;
}

CandidateOutcome Validator::ProbeCheck(const Execution& exec) {
  const size_t n = rout_->num_rows();
  const int probes = std::min<int>(options_->probe_tuples, static_cast<int>(n));

  // Membership probes: bind every projection column to a sampled R_out
  // tuple; an empty result proves the tuple cannot be generated.
  for (int p = 0; p < probes; ++p) {
    RowId row = static_cast<RowId>(probes == 1 ? 0 : p * (n - 1) / (probes - 1));
    PJQuery probe = exec.query;
    const auto& projections = probe.projections();
    for (size_t j = 0; j < projections.size(); ++j) {
      probe.AddSelection(projections[j].instance, projections[j].column,
                         rout_->column(static_cast<ColumnId>(j)).at(row));
    }
    auto cursor = QueryCursor::Create(*db_, probe, budget_exceeded_,
                                      exec.vjoins, policy_);
    if (!cursor.ok()) return CandidateOutcome::kError;
    std::vector<ValueId> out_row;
    bool hit = (*cursor)->Next(&out_row);
    stats_->validation_rows += (*cursor)->rows_examined();
    stats_->probe_rows += (*cursor)->rows_examined();
    stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
    if ((*cursor)->interrupted()) return CandidateOutcome::kBudgetExhausted;
    if (!hit) return CandidateOutcome::kMissingTuples;
  }

  // Partial probe (exact only): bind the first projection column and stream
  // a bounded prefix; any produced tuple outside R_out dismisses Q.
  if (options_->variant == QreVariant::kExact && probes > 0 &&
      rout_->num_columns() > 0) {
    PJQuery probe = exec.query;
    const auto& proj0 = probe.projections()[0];
    probe.AddSelection(proj0.instance, proj0.column, rout_->column(0).at(0));
    auto cursor = QueryCursor::Create(*db_, probe, budget_exceeded_,
                                      exec.vjoins, policy_);
    if (!cursor.ok()) return CandidateOutcome::kError;
    std::vector<ValueId> out_row;
    uint64_t streamed = 0;
    while (streamed < kPartialProbeRowCap && (*cursor)->Next(&out_row)) {
      ++streamed;
      ++stats_->validation_rows;
      ++stats_->probe_rows;
      if (rout_set_->count(out_row) == 0) {
        stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
        return CandidateOutcome::kExtraTuples;
      }
    }
    stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
    if ((*cursor)->interrupted()) return CandidateOutcome::kBudgetExhausted;
  }
  return CandidateOutcome::kGenerating;  // "not dismissed"
}

bool Validator::TryCachedCoherence(const Walk& walk, bool* verdict) {
  if (walk_cache_ == nullptr || walk.length() < 2) return false;
  WalkSignature sig = CanonicalWalkSignature(*db_, walk);
  WalkCache::Handle h =
      walk_cache_->Acquire(*db_, sig, stats_, budget_exceeded_);
  if (!h) return false;
  // Reachability in the walk's own from -> to orientation.
  const ReachMap& fwd = sig.flipped ? h->reverse : h->forward;

  // Mirror ComposeWalkSubquery's projection order: the R_out columns
  // generated from the two endpoint instances, in slot order, split by
  // endpoint side.
  std::vector<ColumnId> out_cols;
  std::vector<size_t> from_j, to_j;          // tuple positions per endpoint
  std::vector<ColumnId> from_cols, to_cols;  // endpoint db columns
  for (ColumnId c = 0; c < mapping_->slots.size(); ++c) {
    const auto& [inst, db_col] = mapping_->slots[c];
    if (inst == walk.from_instance) {
      from_j.push_back(out_cols.size());
      from_cols.push_back(db_col);
      out_cols.push_back(c);
    } else if (inst == walk.to_instance) {
      to_j.push_back(out_cols.size());
      to_cols.push_back(db_col);
      out_cols.push_back(c);
    }
  }
  if (from_cols.empty() || to_cols.empty()) return false;

  const Table& from_table =
      db_->table(mapping_->instances[walk.from_instance].table);
  const Table& to_table = db_->table(mapping_->instances[walk.to_instance].table);
  const HashIndex& from_index =
      db_->GetOrBuildIndex(mapping_->instances[walk.from_instance].table,
                           from_cols);
  const HashIndex& to_index = db_->GetOrBuildIndex(
      mapping_->instances[walk.to_instance].table, to_cols);
  const Column& from_join = from_table.column(sig.from_col);
  const Column& to_join = to_table.column(sig.to_col);

  // Per needed tuple: the endpoint rows matching the tuple's bindings, and
  // whether any pair of them is connected by the materialized chain.
  // gov: bounded — one projection of R_out, freed at scope exit.
  TupleSet needed = ProjectToTupleSet(*rout_, out_cols, budget_exceeded_);
  if (BudgetExceeded()) return false;  // No verdict: partial needed-set.
  std::vector<ValueId> key_from(from_cols.size()), key_to(to_cols.size());
  std::vector<ValueId> us, vs;
  size_t probed = 0;
  bool coherent = true;
  // det: order-insensitive — forall over needed tuples; `coherent` is a
  // conjunction, identical for every visiting order (interrupted runs
  // publish nothing, per the no-memo-under-interrupt rule).
  for (const auto& tuple : needed) {
    for (size_t k = 0; k < from_j.size(); ++k) key_from[k] = tuple[from_j[k]];
    for (size_t k = 0; k < to_j.size(); ++k) key_to[k] = tuple[to_j[k]];
    const std::vector<RowId>& rows_from = key_from.size() == 1
                                              ? from_index.Lookup1(key_from[0])
                                              : from_index.Lookup(key_from);
    const std::vector<RowId>& rows_to = key_to.size() == 1
                                            ? to_index.Lookup1(key_to[0])
                                            : to_index.Lookup(key_to);
    stats_->validation_rows += rows_from.size() + rows_to.size();
    stats_->coherence_rows += rows_from.size() + rows_to.size();
    bool connected = false;
    if (!rows_from.empty() && !rows_to.empty()) {
      us.clear();
      for (RowId r : rows_from) us.push_back(from_join.at(r));
      std::sort(us.begin(), us.end());
      us.erase(std::unique(us.begin(), us.end()), us.end());
      vs.clear();
      for (RowId r : rows_to) vs.push_back(to_join.at(r));
      std::sort(vs.begin(), vs.end());
      vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
      for (ValueId u : us) {
        auto it = fwd.find(u);
        if (it == fwd.end()) continue;
        for (ValueId v : vs) {
          if (std::binary_search(it->second.begin(), it->second.end(), v)) {
            connected = true;
            break;
          }
        }
        if (connected) break;
      }
    }
    if (!connected) {
      coherent = false;
      break;
    }
    if ((++probed & kInterruptPollMask) == 0 && BudgetExceeded()) {
      // Unproven either way under timeout: no verdict (caller won't memoize).
      return false;
    }
  }
  *verdict = coherent;
  return true;
}

bool Validator::WalkCoherent(int walk_id) {
  auto memo = feedback_->WalkCoherence(walk_id);
  if (memo.has_value()) return *memo;

  ++stats_->walk_coherence_checks;

  bool verdict = false;
  if (TryCachedCoherence((*walks_)[walk_id], &verdict)) {
    feedback_->SetWalkCoherence(walk_id, verdict);
    return verdict;
  }

  std::vector<ColumnId> out_cols;
  PJQuery subquery =
      ComposeWalkSubquery(*db_, *mapping_, (*walks_)[walk_id], &out_cols);

  // Needed: every tuple of pi_outcols(R_out) must appear in the walk
  // subquery's result. Checked by one index-backed point probe per needed
  // tuple (binding the subquery's projection columns), so an incoherent
  // walk is detected without draining the subquery's full result.
  // gov: bounded — one projection of R_out, freed at scope exit.
  TupleSet needed = ProjectToTupleSet(*rout_, out_cols, budget_exceeded_);
  if (BudgetExceeded()) return false;  // No verdict: partial needed-set.
  const auto projections = subquery.projections();
  bool coherent = true;
  size_t probed = 0;
  // One cursor serves every probe: created on the first tuple, rebound for
  // the rest (with batch_probes off, the legacy per-tuple replanning is
  // kept as the ablation baseline). The accumulated rows_examined() is
  // folded into the stats exactly once, on every exit path.
  std::unique_ptr<QueryCursor> shared_cursor;
  uint64_t counted_rows = 0;
  uint64_t counted_sips = 0;
  auto count_rows = [&](const QueryCursor& cursor) {
    const uint64_t delta = cursor.rows_examined() - counted_rows;
    counted_rows = cursor.rows_examined();
    stats_->validation_rows += delta;
    stats_->coherence_rows += delta;
    stats_->sip_rows_skipped += cursor.sip_rows_skipped() - counted_sips;
    counted_sips = cursor.sip_rows_skipped();
  };
  // det: order-insensitive — forall-probe conjunction over needed tuples;
  // same verdict for every visiting order.
  for (const auto& tuple : needed) {
    QueryCursor* cursor = nullptr;
    if (policy_.batch_probes && shared_cursor != nullptr) {
      shared_cursor->Rebind(tuple.data(), tuple.size());
      cursor = shared_cursor.get();
    } else {
      subquery.ClearSelections();
      for (size_t j = 0; j < projections.size(); ++j) {
        subquery.AddSelection(projections[j].instance, projections[j].column,
                              tuple[j]);
      }
      auto created =
          QueryCursor::Create(*db_, subquery, budget_exceeded_, {}, policy_);
      if (!created.ok()) {
        coherent = false;
        break;
      }
      shared_cursor = std::move(created).ValueOrDie();
      counted_rows = 0;
      counted_sips = 0;
      cursor = shared_cursor.get();
    }
    std::vector<ValueId> row;
    bool hit = cursor->Next(&row);
    count_rows(*cursor);
    if (cursor->interrupted()) {
      // Unproven either way under timeout: do not memoize a verdict.
      return false;
    }
    if (!hit) {
      coherent = false;
      break;
    }
    if ((++probed & kInterruptPollMask) == 0 && BudgetExceeded()) {
      // Unproven either way: do not memoize a verdict under timeout.
      return false;
    }
  }
  feedback_->SetWalkCoherence(walk_id, coherent);
  return coherent;
}

CandidateOutcome Validator::AllTupleProbe(const Execution& exec) {
  // Advanced probing (the multi-tuple horizontal check of Appendix A, whose
  // text is unavailable; this is our design): verify R_out ⊆ Q(D) with one
  // index-backed point probe per R_out tuple, instead of streaming Q(D) —
  // which, for subset-failing candidates under exact semantics, would have
  // to drain the entire (possibly huge) result before concluding "missing".
  const size_t rows = rout_->num_rows();
  if (rows == 0) return CandidateOutcome::kGenerating;
  PJQuery probe = exec.query;
  const auto projections = probe.projections();

  if (!policy_.batch_probes) {
    // Legacy scalar pass (ablation baseline): replan one cursor per tuple.
    for (RowId r = 0; r < rows; ++r) {
      probe.ClearSelections();
      for (size_t j = 0; j < projections.size(); ++j) {
        probe.AddSelection(projections[j].instance, projections[j].column,
                           rout_->column(static_cast<ColumnId>(j)).at(r));
      }
      auto cursor =
          QueryCursor::Create(*db_, probe, budget_exceeded_, exec.vjoins);
      if (!cursor.ok()) return CandidateOutcome::kError;
      std::vector<ValueId> out_row;
      bool hit = (*cursor)->Next(&out_row);
      stats_->validation_rows += (*cursor)->rows_examined();
      stats_->alltuple_rows += (*cursor)->rows_examined();
      stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
      if ((*cursor)->interrupted()) return CandidateOutcome::kBudgetExhausted;
      if (!hit) return CandidateOutcome::kMissingTuples;
      if ((r & kInterruptPollMask) == 0 && BudgetExceeded()) {
        return CandidateOutcome::kBudgetExhausted;
      }
    }
    return CandidateOutcome::kGenerating;  // R_out ⊆ Q(D) established
  }

  // Batched pass (DESIGN.md §12): R_out is partitioned into morsels; each
  // morsel worker plans one cursor and rebinds it per tuple, so the
  // per-probe Create/plan cost — the dominant residual cost of E12's convoy
  // tail — is paid once per morsel. The verdict is a conjunction over
  // tuples, so it is independent of morsel completion order; a proven miss
  // takes precedence over an interrupt (it is a true dismissal proof either
  // way, and under no stop signal every configuration scans every tuple).
  for (size_t j = 0; j < projections.size(); ++j) {
    probe.AddSelection(projections[j].instance, projections[j].column,
                       rout_->column(static_cast<ColumnId>(j)).at(0));
  }
  const size_t morsel = policy_.MorselSize();
  const size_t num_morsels = (rows + morsel - 1) / morsel;
  // The engine's own governor (see ExecPolicy::governor); the database
  // attachment is only the standalone fallback.
  const std::shared_ptr<ResourceGovernor> governor =
      policy_.governor != nullptr ? policy_.governor : db_->governor();
  std::atomic<bool> missing{false};
  std::atomic<bool> interrupted{false};
  std::atomic<bool> error{false};
  std::atomic<uint64_t> examined{0};
  std::atomic<uint64_t> sip_skips{0};
  auto run_morsel = [&](size_t m) {
    if (missing.load(std::memory_order_relaxed) ||
        interrupted.load(std::memory_order_relaxed) ||
        error.load(std::memory_order_relaxed)) {
      return;
    }
    // Fault site "morsel-worker": one poll per probe morsel; an injected
    // alloc-fail dismisses this candidate only (kError), an injected cancel
    // lands at the cursor's next interrupt poll.
    if (governor != nullptr &&
        governor->FaultPointAllocFails("morsel-worker")) {
      error.store(true, std::memory_order_relaxed);
      return;
    }
    auto created =
        QueryCursor::Create(*db_, probe, budget_exceeded_, exec.vjoins,
                            policy_);
    if (!created.ok()) {
      error.store(true, std::memory_order_relaxed);
      return;
    }
    std::unique_ptr<QueryCursor> cursor = std::move(created).ValueOrDie();
    std::vector<ValueId> vals(projections.size());
    std::vector<ValueId> out_row;
    const size_t lo = m * morsel;
    const size_t hi = std::min(rows, lo + morsel);
    for (size_t r = lo; r < hi; ++r) {
      for (size_t j = 0; j < vals.size(); ++j) {
        vals[j] = rout_->column(static_cast<ColumnId>(j))
                      .at(static_cast<RowId>(r));
      }
      cursor->Rebind(vals.data(), vals.size());
      bool hit = cursor->Next(&out_row);
      if (cursor->interrupted()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      if (!hit) {
        missing.store(true, std::memory_order_relaxed);
        break;
      }
    }
    examined.fetch_add(cursor->rows_examined(), std::memory_order_relaxed);
    sip_skips.fetch_add(cursor->sip_rows_skipped(), std::memory_order_relaxed);
  };
  RunMorsels(policy_.WantsParallel(rows) ? policy_.pool : nullptr,
             policy_.intra_threads - 1, num_morsels, run_morsel);
  const uint64_t total = examined.load(std::memory_order_relaxed);
  stats_->validation_rows += total;
  stats_->alltuple_rows += total;
  stats_->sip_rows_skipped += sip_skips.load(std::memory_order_relaxed);
  if (missing.load(std::memory_order_relaxed)) {
    return CandidateOutcome::kMissingTuples;
  }
  if (error.load(std::memory_order_relaxed)) return CandidateOutcome::kError;
  if (interrupted.load(std::memory_order_relaxed) || BudgetExceeded()) {
    return CandidateOutcome::kBudgetExhausted;
  }
  return CandidateOutcome::kGenerating;  // R_out ⊆ Q(D) established
}

CandidateOutcome Validator::FullCheck(const CandidateQuery& candidate,
                                      const Execution& exec) {
  ++stats_->full_validations;

  if (options_->use_probing) {
    CandidateOutcome subset = AllTupleProbe(exec);
    if (subset != CandidateOutcome::kGenerating) return subset;
    if (options_->variant == QreVariant::kSuperset) {
      return CandidateOutcome::kGenerating;  // superset needs nothing more
    }
    // Exact: R_out ⊆ Q(D) holds; it remains to rule out extra tuples.
    if (policy_.subplan_cache != nullptr) {
      // Block path with subplan memoization (DESIGN.md §13): convoy
      // candidates share join prefixes, so the block executor resumes from
      // the deepest cached intermediate instead of re-streaming the whole
      // join per candidate — the cascade's dominant residual cost. The
      // subset guard (= R_out) stops the projection at the first distinct
      // tuple outside R_out, preserving the early-exit character of the
      // streaming hunt. The block executor knows nothing of virtual joins,
      // so the unsubstituted query is used (prefix signatures then align
      // across the convoy regardless of which walks were materialized).
      bool violated = false;
      BlockRunStats brs;
      auto result =
          ExecuteBlock(*db_, candidate.query, "extras", budget_exceeded_,
                       policy_, rout_set_, &violated, &brs);
      stats_->validation_rows += brs.rows_enumerated;
      stats_->fullscan_rows += brs.rows_enumerated;
      stats_->sip_rows_skipped += brs.sip_rows_skipped;
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kResourceExhausted) {
          // Global stop vs candidate-local exhaustion, exactly as in the
          // non-progressive block path below.
          return BudgetExceeded() ? CandidateOutcome::kBudgetExhausted
                                  : CandidateOutcome::kError;
        }
        return CandidateOutcome::kError;
      }
      return violated ? CandidateOutcome::kExtraTuples
                      : CandidateOutcome::kGenerating;
    }
    // Legacy streaming hunt (the --subplan-cache-mb 0 ablation cell): early
    // exit on the first violation. Substitution cannot change the emitted
    // set: projections only touch endpoint instances, which the reduced
    // query retains.
    auto cursor = QueryCursor::Create(*db_, exec.query, budget_exceeded_,
                                      exec.vjoins, policy_);
    if (!cursor.ok()) return CandidateOutcome::kError;
    std::vector<ValueId> row;
    auto fold_sip = [&] {
      stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
    };
    while ((*cursor)->Next(&row)) {
      ++stats_->validation_rows;
      ++stats_->fullscan_rows;
      if ((stats_->validation_rows & kInterruptPollMask) == 0 &&
          BudgetExceeded()) {
        fold_sip();
        return CandidateOutcome::kBudgetExhausted;
      }
      if (rout_set_->count(row) == 0) {
        fold_sip();
        return CandidateOutcome::kExtraTuples;
      }
    }
    fold_sip();
    if ((*cursor)->interrupted()) return CandidateOutcome::kBudgetExhausted;
    return CandidateOutcome::kGenerating;
  }

  if (!options_->use_progressive_validation) {
    // The paper's "single block operation": materialize Q(D) in full with
    // the block executor, then compare. No early exit of any kind. The block
    // executor knows nothing of virtual joins, so the unsubstituted query is
    // used here.
    BlockRunStats brs;
    auto result = ExecuteBlock(*db_, candidate.query, "block", budget_exceeded_,
                               policy_, nullptr, nullptr, &brs);
    stats_->sip_rows_skipped += brs.sip_rows_skipped;
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kResourceExhausted) {
        // Either a global stop (time budget, cancel, memory exhaustion)
        // fired mid-evaluation, or this one candidate blew the block
        // executor's intermediate-size cap / governor charge. Only the
        // former aborts the whole search; the latter skips just this
        // candidate (it cannot be classified, so nothing is pruned).
        return BudgetExceeded() ? CandidateOutcome::kBudgetExhausted
                                : CandidateOutcome::kError;
      }
      return CandidateOutcome::kError;
    }
    stats_->validation_rows += result->num_rows();
    stats_->fullscan_rows += result->num_rows();
    // gov: charged — the block result's bytes were charged (and released)
    // as "block-buffer" inside ExecuteBlock; this projection of it is
    // transient and scope-bounded.
    TupleSet result_set = TableToTupleSet(*result, budget_exceeded_);
    if (BudgetExceeded()) return CandidateOutcome::kBudgetExhausted;
    // The containment checks return a conservative false under interrupt, so
    // each verdict is re-checked against the budget before it can classify
    // (and thereby prune) the candidate.
    CandidateOutcome out;
    if (options_->variant == QreVariant::kExact) {
      if (result_set.size() != rout_set_->size()) {
        out = !IsSubsetOf(*rout_set_, result_set, budget_exceeded_)
                  ? CandidateOutcome::kMissingTuples
                  : CandidateOutcome::kExtraTuples;
      } else {
        out = IsSubsetOf(result_set, *rout_set_, budget_exceeded_)
                  ? CandidateOutcome::kGenerating
                  : CandidateOutcome::kExtraTuples;
      }
    } else {
      out = IsSubsetOf(*rout_set_, result_set, budget_exceeded_)
                ? CandidateOutcome::kGenerating
                : CandidateOutcome::kMissingTuples;
    }
    return BudgetExceeded() ? CandidateOutcome::kBudgetExhausted : out;
  }

  // Progressive evaluation (without probing): stream and stop at the first
  // contradiction.
  auto cursor = QueryCursor::Create(*db_, exec.query, budget_exceeded_,
                                    exec.vjoins, policy_);
  if (!cursor.ok()) return CandidateOutcome::kError;

  std::vector<ValueId> row;
  // gov: bounded — at most |R_out| tuples ever inserted.
  TupleSet covered;
  covered.reserve(rout_set_->size());
  auto fold_sip = [&] {
    stats_->sip_rows_skipped += (*cursor)->sip_rows_skipped();
  };
  while ((*cursor)->Next(&row)) {
    ++stats_->validation_rows;
    if ((stats_->validation_rows & kInterruptPollMask) == 0 &&
        BudgetExceeded()) {
      fold_sip();
      return CandidateOutcome::kBudgetExhausted;
    }
    if (rout_set_->count(row) == 0) {
      if (options_->variant == QreVariant::kExact) {
        fold_sip();
        return CandidateOutcome::kExtraTuples;  // progressive early exit
      }
      continue;  // superset: extra tuples are allowed
    }
    covered.insert(row);
    if (options_->variant == QreVariant::kSuperset &&
        covered.size() == rout_set_->size()) {
      fold_sip();
      return CandidateOutcome::kGenerating;  // superset early exit
    }
  }
  fold_sip();
  if ((*cursor)->interrupted()) return CandidateOutcome::kBudgetExhausted;
  return covered.size() == rout_set_->size() ? CandidateOutcome::kGenerating
                                             : CandidateOutcome::kMissingTuples;
}

CandidateOutcome Validator::Validate(const CandidateQuery& candidate) {
  if (BudgetExceeded()) return CandidateOutcome::kBudgetExhausted;

  // Walk substitution up front: every later stage of the cascade runs the
  // reduced query when the cache has the candidate's chains materialized.
  Execution exec = PrepareExecution(candidate);

  if (options_->use_probing && options_->probe_tuples > 0 &&
      rout_->num_rows() > 0) {
    CandidateOutcome probe = ProbeCheck(exec);
    if (probe != CandidateOutcome::kGenerating) {
      if (probe == CandidateOutcome::kMissingTuples ||
          probe == CandidateOutcome::kExtraTuples) {
        ++stats_->candidates_dismissed_probe;
      }
      return probe;
    }
  }

  if (options_->use_indirect_coherence) {
    for (int walk_id : candidate.walk_ids) {
      if (!WalkCoherent(walk_id)) {
        ++stats_->candidates_dismissed_walk;
        return CandidateOutcome::kIncoherentWalk;
      }
      if (BudgetExceeded()) return CandidateOutcome::kBudgetExhausted;
    }
  }

  return FullCheck(candidate, exec);
}

}  // namespace fastqre
