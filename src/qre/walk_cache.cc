#include "qre/walk_cache.h"

#include <algorithm>

namespace fastqre {

namespace {

// Estimated resident bytes of a ReachMap: per entry, the key, the vector
// header, the value payload, and ~16 bytes of node/bucket overhead.
size_t EstimateBytes(const ReachMap& m, const std::function<bool()>& interrupt) {
  size_t bytes = sizeof(ReachMap);
  uint64_t scanned = 0;
  // det: order-insensitive — commutative byte sum.
  for (const auto& [key, vals] : m) {
    if ((++scanned & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      return bytes;  // Partial estimate: the interrupted caller discards it.
    }
    bytes += sizeof(key) + sizeof(vals) + vals.capacity() * sizeof(ValueId) + 16;
  }
  return bytes;
}

// Returns false when `interrupt` fired mid-canonicalization (entries sorted
// so far stay sorted; the caller abandons the whole relation).
bool SortUnique(ReachMap* m, const std::function<bool()>& interrupt) {
  uint64_t scanned = 0;
  // det: order-insensitive — per-entry sort+dedup; entries are independent.
  for (auto& [key, vals] : *m) {
    if ((++scanned & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      return false;
    }
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    vals.shrink_to_fit();
  }
  return true;
}

}  // namespace

std::unique_ptr<WalkRelation> BuildWalkRelation(
    const Database& db, const std::vector<WalkHop>& hops,
    const std::function<bool()>& interrupt) {
  // Backward DP over the chain: after processing hop i, next[u] holds the
  // sorted distinct right-endpoint values reachable from in-value u through
  // hops i..last. The last hop seeds with its own out values; earlier hops
  // union the suffix sets of the rows they chain into.
  // gov: charged — published relations are charged in FinishBuild; an
  // unpublished build is transient and bounded by the interrupt poll.
  ReachMap next;
  uint64_t work = 0;
  auto interrupted = [&]() {
    return (++work & kInterruptPollMask) == 0 && interrupt && interrupt();
  };
  for (size_t i = hops.size(); i-- > 0;) {
    const WalkHop& hop = hops[i];
    const Table& t = db.table(hop.table);
    const Column& in = t.column(hop.in_col);
    const Column& out = t.column(hop.out_col);
    const bool last = (i + 1 == hops.size());
    // gov: charged — moved into `next` above; same accounting.
    ReachMap cur;
    for (RowId r = 0; r < t.num_rows(); ++r) {
      if (interrupted()) return nullptr;
      ValueId o = out.at(r);
      if (last) {
        cur[in.at(r)].push_back(o);
      } else {
        auto it = next.find(o);
        if (it == next.end()) continue;  // row chains into nothing
        auto& vals = cur[in.at(r)];
        vals.insert(vals.end(), it->second.begin(), it->second.end());
      }
    }
    if (!SortUnique(&cur, interrupt)) return nullptr;
    next = std::move(cur);
  }

  auto rel = std::make_unique<WalkRelation>();
  rel->forward = std::move(next);
  // det: order-insensitive — builds the inverse multimap, whose contents do
  // not depend on visiting order; SortUnique below canonicalizes each entry.
  for (const auto& [u, vals] : rel->forward) {
    if (interrupted()) return nullptr;
    for (ValueId v : vals) rel->reverse[v].push_back(u);
  }
  if (!SortUnique(&rel->reverse, interrupt)) return nullptr;
  // Key-domain bitmaps (SIP, DESIGN.md §13): one bit per dictionary entry.
  const size_t universe = db.dictionary()->size();
  rel->forward_domain = BitmapFilter(universe);
  // det: order-insensitive — sets one bit per key; idempotent and commutative.
  for (const auto& [u, vals] : rel->forward) {
    if (interrupted()) return nullptr;
    rel->forward_domain.Set(u);
  }
  rel->reverse_domain = BitmapFilter(universe);
  // det: order-insensitive — sets one bit per key; idempotent and commutative.
  for (const auto& [v, vals] : rel->reverse) {
    if (interrupted()) return nullptr;
    rel->reverse_domain.Set(v);
  }
  rel->bytes = EstimateBytes(rel->forward, interrupt) +
               EstimateBytes(rel->reverse, interrupt) +
               rel->forward_domain.EstimatedBytes() +
               rel->reverse_domain.EstimatedBytes();
  if (interrupt && interrupt()) return nullptr;  // Partial byte estimate.
  return rel;
}

WalkCache::Entry* WalkCache::BeginBuild(const WalkSignature& sig,
                                        QreStats* stats, Handle* hit) {
  MutexLock lock(&mu_);
  Entry& entry = entries_[sig.key];
  ++entry.uses;
  if (entry.relation) {
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
    if (stats) ++stats->walk_cache_hits;
    *hit = entry.relation;
    return nullptr;
  }
  if (stats) ++stats->walk_cache_misses;
  if (entry.uses <= static_cast<uint64_t>(admission_) || entry.building) {
    return nullptr;
  }
  entry.building = true;
  return &entry;
}

WalkCache::Handle WalkCache::FinishBuild(Entry* entry,
                                         std::unique_ptr<WalkRelation> built,
                                         QreStats* stats) {
  // Charge the governor BEFORE taking mu_: a failed charge can escalate the
  // degradation ladder, whose level-1 pressure hook re-enters this cache via
  // ShrinkTo (which takes mu_). Charging under the lock would deadlock.
  bool charged = false;
  if (built != nullptr && governor_ != nullptr) {
    charged = governor_->TryCharge(built->bytes, "walk-cache-build");
  }
  MutexLock lock(&mu_);
  entry->building = false;
  if (!built) return nullptr;  // interrupted: publish nothing

  Handle handle(built.release());
  if (handle->bytes > budget_bytes_ || (governor_ != nullptr && !charged)) {
    // Bigger than the whole budget, or refused by the governor (injected
    // alloc-fail or memory pressure): hand it to this caller, never cache
    // it. The caller's pin is transient, so nothing stays charged.
    if (charged) governor_->Release(handle->bytes);
    return handle;
  }
  entry->relation = handle;
  bytes_used_ += handle->bytes;
  lru_.push_front(entry);
  entry->lru_it = lru_.begin();
  while (bytes_used_ > budget_bytes_) {
    Entry* victim = lru_.back();
    if (victim == entry) break;  // unreachable (handle->bytes <= budget)
    lru_.pop_back();
    bytes_used_ -= victim->relation->bytes;
    // Release is atomic-only: safe while holding mu_.
    if (governor_ != nullptr) governor_->Release(victim->relation->bytes);
    victim->relation.reset();  // readers keep their pins
    ++evictions_;
    if (stats) ++stats->walk_cache_evictions;
  }
  return handle;
}

void WalkCache::ShrinkTo(size_t target_bytes) {
  MutexLock lock(&mu_);
  while (bytes_used_ > target_bytes && !lru_.empty()) {
    Entry* victim = lru_.back();
    lru_.pop_back();
    bytes_used_ -= victim->relation->bytes;
    if (governor_ != nullptr) governor_->Release(victim->relation->bytes);
    victim->relation.reset();  // readers keep their pins
    ++evictions_;
  }
}

WalkCache::Handle WalkCache::Acquire(const Database& db,
                                     const WalkSignature& sig, QreStats* stats,
                                     const std::function<bool()>& interrupt) {
  if (!sig.cacheable || budget_bytes_ == 0) return nullptr;
  // Degradation ladder level 2 (pipelined-only): stop materializing.
  if (governor_ != nullptr && !governor_->materialization_allowed()) {
    return nullptr;
  }

  Handle hit;
  Entry* entry = BeginBuild(sig, stats, &hit);
  if (entry == nullptr) return hit;  // cache hit, not admitted, or in-flight

  // Build outside the lock: concurrent requesters of the same key see
  // `building` and fall back to pipelined execution instead of blocking.
  return FinishBuild(entry, BuildWalkRelation(db, sig.hops, interrupt), stats);
}

size_t WalkCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_used_;
}

uint64_t WalkCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

}  // namespace fastqre
