#include "qre/stats.h"

#include "common/strings.h"

namespace fastqre {

std::string QreStats::ToString() const {
  std::string out;
  out += StringFormat("total time:            %.4fs\n", total_seconds);
  out += StringFormat("column cover:          %.4fs (%llu pairs: %llu pruned, %llu checked)\n",
                      cover_seconds,
                      static_cast<unsigned long long>(cover_pairs_total),
                      static_cast<unsigned long long>(cover_pairs_pruned),
                      static_cast<unsigned long long>(cover_pairs_checked));
  out += StringFormat("CGM discovery:         %.4fs (%llu candidates, %llu maximal CGMs)\n",
                      cgm_seconds,
                      static_cast<unsigned long long>(cgm_candidates_checked),
                      static_cast<unsigned long long>(num_cgms));
  out += StringFormat("mappings tried:        %llu\n",
                      static_cast<unsigned long long>(mappings_tried));
  out += StringFormat("walks discovered:      %llu\n",
                      static_cast<unsigned long long>(walks_discovered));
  out += StringFormat("candidates generated:  %llu (%llu walk sets expanded)\n",
                      static_cast<unsigned long long>(candidates_generated),
                      static_cast<unsigned long long>(walk_sets_expanded));
  out += StringFormat("candidates validated:  %llu (%llu cancelled)\n",
                      static_cast<unsigned long long>(candidates_validated),
                      static_cast<unsigned long long>(candidates_cancelled));
  out += StringFormat("  pruned (dead sets):  %llu\n",
                      static_cast<unsigned long long>(candidates_pruned_dead));
  out += StringFormat("  dismissed by probe:  %llu\n",
                      static_cast<unsigned long long>(candidates_dismissed_probe));
  out += StringFormat("  dismissed by walks:  %llu (%llu coherence checks)\n",
                      static_cast<unsigned long long>(candidates_dismissed_walk),
                      static_cast<unsigned long long>(walk_coherence_checks));
  out += StringFormat("full validations:      %llu (%llu rows streamed)\n",
                      static_cast<unsigned long long>(full_validations),
                      static_cast<unsigned long long>(validation_rows));
  out += StringFormat("  rows by phase:       probe=%llu coherence=%llu alltuple=%llu fullscan=%llu\n",
                      static_cast<unsigned long long>(probe_rows),
                      static_cast<unsigned long long>(coherence_rows),
                      static_cast<unsigned long long>(alltuple_rows),
                      static_cast<unsigned long long>(fullscan_rows));
  out += StringFormat("walk cache:            hits=%llu misses=%llu evictions=%llu bytes=%llu\n",
                      static_cast<unsigned long long>(walk_cache_hits),
                      static_cast<unsigned long long>(walk_cache_misses),
                      static_cast<unsigned long long>(walk_cache_evictions),
                      static_cast<unsigned long long>(walk_cache_bytes));
  out += StringFormat("sideways passing:      %llu rows skipped\n",
                      static_cast<unsigned long long>(sip_rows_skipped));
  out += StringFormat("subplan cache:         hits=%llu misses=%llu evictions=%llu bytes=%llu\n",
                      static_cast<unsigned long long>(subplan_cache_hits),
                      static_cast<unsigned long long>(subplan_cache_misses),
                      static_cast<unsigned long long>(subplan_cache_evictions),
                      static_cast<unsigned long long>(subplan_cache_bytes));
  out += StringFormat("resource governor:     peak=%llu bytes, degradations=%llu, cancelled=%s\n",
                      static_cast<unsigned long long>(peak_tracked_bytes),
                      static_cast<unsigned long long>(degradation_events),
                      cancelled ? "yes" : "no");
  return out;
}

void QreStats::Accumulate(const QreStats& other) {
  cover_seconds += other.cover_seconds;
  cgm_seconds += other.cgm_seconds;
  cover_pairs_total += other.cover_pairs_total;
  cover_pairs_pruned += other.cover_pairs_pruned;
  cover_pairs_checked += other.cover_pairs_checked;
  cgm_candidates_checked += other.cgm_candidates_checked;
  num_cgms += other.num_cgms;
  mappings_tried += other.mappings_tried;
  walks_discovered += other.walks_discovered;
  candidates_generated += other.candidates_generated;
  candidates_validated += other.candidates_validated;
  candidates_cancelled += other.candidates_cancelled;
  walk_sets_expanded += other.walk_sets_expanded;
  candidates_pruned_dead += other.candidates_pruned_dead;
  candidates_dismissed_probe += other.candidates_dismissed_probe;
  candidates_dismissed_walk += other.candidates_dismissed_walk;
  walk_coherence_checks += other.walk_coherence_checks;
  full_validations += other.full_validations;
  validation_rows += other.validation_rows;
  probe_rows += other.probe_rows;
  coherence_rows += other.coherence_rows;
  alltuple_rows += other.alltuple_rows;
  fullscan_rows += other.fullscan_rows;
  walk_cache_hits += other.walk_cache_hits;
  walk_cache_misses += other.walk_cache_misses;
  walk_cache_evictions += other.walk_cache_evictions;
  walk_cache_bytes += other.walk_cache_bytes;
  sip_rows_skipped += other.sip_rows_skipped;
  subplan_cache_hits += other.subplan_cache_hits;
  subplan_cache_misses += other.subplan_cache_misses;
  subplan_cache_evictions += other.subplan_cache_evictions;
  subplan_cache_bytes += other.subplan_cache_bytes;
  // Peak is a high-water mark, not a tally: keep the max across runs.
  if (other.peak_tracked_bytes > peak_tracked_bytes) {
    peak_tracked_bytes = other.peak_tracked_bytes;
  }
  degradation_events += other.degradation_events;
  cancelled = cancelled || other.cancelled;
  total_seconds += other.total_seconds;
}

}  // namespace fastqre
