// QRE workloads: the paper's running-example queries, a complexity ladder of
// CPJ queries over TPC-H (the evaluation axis of experiments E1/E4/E5/E9),
// and a random CPJ query generator for property tests.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief One workload entry: a ground-truth generating query plus its
/// materialized output table R_out = Q(D).
struct WorkloadQuery {
  std::string name;
  std::string description;
  PJQuery query;
  Table rout;
};

/// \brief Builds the paper's Query 1 (Figure 2): pairs of suppliers in the
/// same nation supplying the same part, with the first supplier's available
/// quantity. 6 instances (S, S2, PS, PS2, P, N), 6 joins, cyclic graph.
Result<PJQuery> BuildPaperQuery1(const Database& tpch);

/// \brief Query 2 = Query 1 without the PS.availqty projection.
Result<PJQuery> BuildPaperQuery2(const Database& tpch);

/// \brief The standard evaluation ladder over a TPC-H database: ten CPJ
/// queries of increasing complexity, ending with the paper's Queries 2 and 1.
/// Each entry's R_out is materialized by executing the query.
Result<std::vector<WorkloadQuery>> StandardTpchWorkload(const Database& tpch);

/// \brief Options for RandomCpjQuery.
struct RandomQueryOptions {
  int num_instances = 3;       // total table instances in the query graph
  int num_projections = 3;     // projection columns (>=1)
  int max_attempts = 50;       // retries until a non-empty R_out is found
  size_t min_rout_rows = 1;    // reject queries with fewer result rows
  size_t max_rout_rows = 100000;  // reject queries with more result rows
  /// If true, every instance gets at least one projection column. This keeps
  /// the query inside the CPJ class by construction (no intermediate nodes),
  /// so FastQRE is guaranteed-complete on it — the setting used by the
  /// round-trip property tests.
  bool project_every_instance = true;
};

/// \brief Generates a random connected CPJ query over `db` whose execution
/// yields a non-empty R_out, returning both. Instances are grown as a random
/// spanning tree over schema-graph edges; projections are drawn from random
/// instances. Returns NotFound if max_attempts random shapes all produce
/// out-of-bounds outputs.
Result<WorkloadQuery> RandomCpjQuery(const Database& db, Rng* rng,
                                     const RandomQueryOptions& options);

}  // namespace fastqre
