#include "datagen/workload.h"

#include <set>

#include "engine/builder.h"
#include "engine/executor.h"

namespace fastqre {

Result<PJQuery> BuildPaperQuery1(const Database& tpch) {
  // SELECT S1.s_suppkey, S1.s_name, PS1.ps_availqty, S2.s_suppkey, S2.s_name
  // FROM supplier S1, supplier S2, partsupp PS1, partsupp PS2, part P, nation N
  // WHERE S1.s_suppkey=PS1.ps_suppkey AND S2.s_suppkey=PS2.ps_suppkey
  //   AND P.p_partkey=PS1.ps_partkey AND P.p_partkey=PS2.ps_partkey
  //   AND N.n_nationkey=S1.s_nationkey AND N.n_nationkey=S2.s_nationkey
  QueryBuilder b(&tpch);
  InstanceId s1 = b.Instance("supplier");
  InstanceId s2 = b.Instance("supplier");
  InstanceId ps1 = b.Instance("partsupp");
  InstanceId ps2 = b.Instance("partsupp");
  InstanceId p = b.Instance("part");
  InstanceId n = b.Instance("nation");
  b.Join(s1, "s_suppkey", ps1, "ps_suppkey");
  b.Join(s2, "s_suppkey", ps2, "ps_suppkey");
  b.Join(p, "p_partkey", ps1, "ps_partkey");
  b.Join(p, "p_partkey", ps2, "ps_partkey");
  b.Join(n, "n_nationkey", s1, "s_nationkey");
  b.Join(n, "n_nationkey", s2, "s_nationkey");
  b.Project(s1, "s_suppkey");
  b.Project(s1, "s_name");
  b.Project(ps1, "ps_availqty");
  b.Project(s2, "s_suppkey");
  b.Project(s2, "s_name");
  return b.Build();
}

Result<PJQuery> BuildPaperQuery2(const Database& tpch) {
  QueryBuilder b(&tpch);
  InstanceId s1 = b.Instance("supplier");
  InstanceId s2 = b.Instance("supplier");
  InstanceId ps1 = b.Instance("partsupp");
  InstanceId ps2 = b.Instance("partsupp");
  InstanceId p = b.Instance("part");
  InstanceId n = b.Instance("nation");
  b.Join(s1, "s_suppkey", ps1, "ps_suppkey");
  b.Join(s2, "s_suppkey", ps2, "ps_suppkey");
  b.Join(p, "p_partkey", ps1, "ps_partkey");
  b.Join(p, "p_partkey", ps2, "ps_partkey");
  b.Join(n, "n_nationkey", s1, "s_nationkey");
  b.Join(n, "n_nationkey", s2, "s_nationkey");
  b.Project(s1, "s_suppkey");
  b.Project(s1, "s_name");
  b.Project(s2, "s_suppkey");
  b.Project(s2, "s_name");
  return b.Build();
}

namespace {

Result<WorkloadQuery> MakeEntry(const Database& db, std::string name,
                                std::string description, PJQuery query) {
  FASTQRE_ASSIGN_OR_RETURN(Table rout,
                           ExecuteToTable(db, query, "rout_" + name));
  WorkloadQuery wq{std::move(name), std::move(description), std::move(query),
                   std::move(rout)};
  return wq;
}

}  // namespace

Result<std::vector<WorkloadQuery>> StandardTpchWorkload(const Database& tpch) {
  std::vector<WorkloadQuery> out;

  {
    QueryBuilder b(&tpch);
    InstanceId n = b.Instance("nation");
    InstanceId r = b.Instance("region");
    b.Join(n, "n_regionkey", r, "r_regionkey");
    b.Project(n, "n_name");
    b.Project(r, "r_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e, MakeEntry(tpch, "L01", "nations with their regions (2 inst, 1 join)",
                          std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId s = b.Instance("supplier");
    InstanceId n = b.Instance("nation");
    b.Join(s, "s_nationkey", n, "n_nationkey");
    b.Project(s, "s_name");
    b.Project(n, "n_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L02", "suppliers with nations (2 inst, 1 join)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId c = b.Instance("customer");
    InstanceId n = b.Instance("nation");
    InstanceId r = b.Instance("region");
    b.Join(c, "c_nationkey", n, "n_nationkey");
    b.Join(n, "n_regionkey", r, "r_regionkey");
    b.Project(c, "c_name");
    b.Project(n, "n_name");
    b.Project(r, "r_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L03", "customer-nation-region chain (3 inst, 2 joins)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId ps = b.Instance("partsupp");
    InstanceId s = b.Instance("supplier");
    InstanceId p = b.Instance("part");
    b.Join(ps, "ps_suppkey", s, "s_suppkey");
    b.Join(ps, "ps_partkey", p, "p_partkey");
    b.Project(s, "s_name");
    b.Project(p, "p_name");
    b.Project(ps, "ps_availqty");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L04",
                  "supplier/part offers with quantity (3 inst, 2 joins)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    // PS is an intermediate (non-projection) instance here.
    QueryBuilder b(&tpch);
    InstanceId s = b.Instance("supplier");
    InstanceId ps = b.Instance("partsupp");
    InstanceId p = b.Instance("part");
    b.Join(s, "s_suppkey", ps, "ps_suppkey");
    b.Join(p, "p_partkey", ps, "ps_partkey");
    b.Project(s, "s_name");
    b.Project(p, "p_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L05",
                  "supplier-part pairs via intermediate PS (3 inst, 2 joins)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId o = b.Instance("orders");
    InstanceId l = b.Instance("lineitem");
    InstanceId p = b.Instance("part");
    b.Join(l, "l_orderkey", o, "o_orderkey");
    b.Join(l, "l_partkey", p, "p_partkey");
    b.Project(o, "o_orderkey");
    b.Project(p, "p_name");
    b.Project(l, "l_quantity");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e, MakeEntry(tpch, "L06", "order lines with parts (3 inst, 2 joins)",
                          std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId r = b.Instance("region");
    InstanceId n = b.Instance("nation");
    InstanceId s = b.Instance("supplier");
    InstanceId ps = b.Instance("partsupp");
    InstanceId p = b.Instance("part");
    b.Join(n, "n_regionkey", r, "r_regionkey");
    b.Join(s, "s_nationkey", n, "n_nationkey");
    b.Join(ps, "ps_suppkey", s, "s_suppkey");
    b.Join(ps, "ps_partkey", p, "p_partkey");
    b.Project(r, "r_name");
    b.Project(n, "n_name");
    b.Project(s, "s_name");
    b.Project(p, "p_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L07",
                  "region-to-part 5-chain, PS intermediate (5 inst, 4 joins)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    QueryBuilder b(&tpch);
    InstanceId c = b.Instance("customer");
    InstanceId s = b.Instance("supplier");
    InstanceId n = b.Instance("nation");
    b.Join(c, "c_nationkey", n, "n_nationkey");
    b.Join(s, "s_nationkey", n, "n_nationkey");
    b.Project(c, "c_name");
    b.Project(s, "s_name");
    b.Project(n, "n_name");
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
    FASTQRE_ASSIGN_OR_RETURN(
        auto e,
        MakeEntry(tpch, "L08",
                  "customer/supplier pairs in the same nation (3 inst, 2 joins)",
                  std::move(q)));
    out.push_back(std::move(e));
  }
  {
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, BuildPaperQuery2(tpch));
    FASTQRE_ASSIGN_OR_RETURN(
        auto e, MakeEntry(tpch, "L09",
                          "paper Query 2: supplier pairs sharing nation and part "
                          "(6 inst, 6 joins, cyclic)",
                          std::move(q)));
    out.push_back(std::move(e));
  }
  {
    FASTQRE_ASSIGN_OR_RETURN(PJQuery q, BuildPaperQuery1(tpch));
    FASTQRE_ASSIGN_OR_RETURN(
        auto e, MakeEntry(tpch, "L10",
                          "paper Query 1: Query 2 plus PS1.ps_availqty "
                          "(6 inst, 6 joins, cyclic)",
                          std::move(q)));
    out.push_back(std::move(e));
  }
  return out;
}

Result<WorkloadQuery> RandomCpjQuery(const Database& db, Rng* rng,
                                     const RandomQueryOptions& options) {
  const SchemaGraph& graph = db.schema_graph();
  if (graph.num_edges() == 0 && options.num_instances > 1) {
    return Status::InvalidArgument("schema graph has no edges");
  }

  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    PJQuery q;
    // Start from a random table that has at least one incident edge (or any
    // table for single-instance queries).
    std::vector<TableId> seeds;
    for (TableId t = 0; t < db.num_tables(); ++t) {
      if (options.num_instances == 1 || !graph.EdgesOf(t).empty()) {
        seeds.push_back(t);
      }
    }
    if (seeds.empty()) return Status::InvalidArgument("no usable seed table");
    std::vector<TableId> inst_tables;
    InstanceId first = q.AddInstance(rng->Pick(seeds));
    inst_tables.push_back(q.instance_table(first));

    bool stuck = false;
    while (static_cast<int>(q.num_instances()) < options.num_instances) {
      InstanceId u = static_cast<InstanceId>(rng->Uniform(q.num_instances()));
      const auto& edges = graph.EdgesOf(q.instance_table(u));
      if (edges.empty()) {
        stuck = true;
        break;
      }
      const SchemaEdge& e = graph.edge(rng->Pick(edges));
      int side_u;
      if (e.IsSelfLoop()) {
        side_u = rng->Chance(0.5) ? 0 : 1;
      } else {
        side_u = e.SideOf(q.instance_table(u));
      }
      int side_v = 1 - side_u;
      InstanceId v = q.AddInstance(e.table[side_v]);
      q.AddJoin(u, e.column[side_u], v, e.column[side_v]);
    }
    if (stuck) continue;

    // Projections: one per instance first (if requested), then extras.
    std::set<std::pair<InstanceId, ColumnId>> proj;
    if (options.project_every_instance) {
      for (InstanceId i = 0; i < q.num_instances(); ++i) {
        const Table& t = db.table(q.instance_table(i));
        proj.emplace(i, static_cast<ColumnId>(rng->Uniform(t.num_columns())));
      }
    }
    int want = std::max(options.num_projections, 1);
    int guard = 0;
    while (static_cast<int>(proj.size()) < want && guard++ < 100) {
      InstanceId i = static_cast<InstanceId>(rng->Uniform(q.num_instances()));
      const Table& t = db.table(q.instance_table(i));
      proj.emplace(i, static_cast<ColumnId>(rng->Uniform(t.num_columns())));
    }
    for (const auto& [inst, col] : proj) q.AddProjection(inst, col);

    auto rout = ExecuteToTable(db, q, "rout_random");
    if (!rout.ok()) continue;
    if (rout->num_rows() < options.min_rout_rows ||
        rout->num_rows() > options.max_rout_rows) {
      continue;
    }
    WorkloadQuery wq{"random", "randomly generated CPJ query", std::move(q),
                     std::move(rout).ValueOrDie()};
    return wq;
  }
  return Status::NotFound("no suitable random query found within max_attempts");
}

}  // namespace fastqre
