#include "datagen/randomdb.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace fastqre {

Result<Database> BuildRandomDb(const RandomDbOptions& options) {
  if (options.num_tables < 1) {
    return Status::InvalidArgument("num_tables must be >= 1");
  }
  Database db;
  Rng rng(SplitMix64(options.seed) ^ 0x72616e64646221ULL);

  struct Spec {
    TableId id;
    int rows;
    std::vector<int> fk_targets;  // parent table index per fk column
  };
  std::vector<Spec> specs(options.num_tables);

  // Decide shape first: rows, fk edges (spanning tree + extras).
  for (int i = 0; i < options.num_tables; ++i) {
    specs[i].rows = static_cast<int>(
        rng.UniformInt(options.min_rows, std::max(options.min_rows, options.max_rows)));
  }
  for (int i = 1; i < options.num_tables; ++i) {
    // Spanning tree: each table references an earlier one.
    specs[i].fk_targets.push_back(static_cast<int>(rng.Uniform(i)));
  }
  for (int e = 0; e < options.extra_fk_edges && options.num_tables > 1; ++e) {
    int child = static_cast<int>(rng.Uniform(options.num_tables - 1)) + 1;
    specs[child].fk_targets.push_back(static_cast<int>(rng.Uniform(child)));
  }

  // Create tables: key column, fk columns, data columns.
  std::vector<int> data_cols(options.num_tables);
  for (int i = 0; i < options.num_tables; ++i) {
    FASTQRE_ASSIGN_OR_RETURN(specs[i].id, db.AddTable("t" + std::to_string(i)));
    Table& t = db.table(specs[i].id);
    FASTQRE_RETURN_NOT_OK(
        t.AddColumn(StringFormat("t%d_key", i), ValueType::kInt64));
    for (size_t j = 0; j < specs[i].fk_targets.size(); ++j) {
      FASTQRE_RETURN_NOT_OK(t.AddColumn(
          StringFormat("t%d_fk%zu", i, j), ValueType::kInt64));
    }
    data_cols[i] = static_cast<int>(
        rng.UniformInt(1, std::max(1, options.max_data_columns)));
    for (int j = 0; j < data_cols[i]; ++j) {
      bool is_string = rng.Chance(options.string_column_prob);
      FASTQRE_RETURN_NOT_OK(
          t.AddColumn(StringFormat("t%d_d%d", i, j),
                      is_string ? ValueType::kString : ValueType::kInt64));
    }
  }

  // Populate rows. Keys are 1..rows offset by a per-table base so key
  // domains of different tables do not accidentally overlap (fk columns
  // reference the parent's actual key values).
  for (int i = 0; i < options.num_tables; ++i) {
    Table& t = db.table(specs[i].id);
    const int64_t key_base = 1000 * (i + 1);
    for (int r = 0; r < specs[i].rows; ++r) {
      std::vector<Value> row;
      row.emplace_back(key_base + r);
      for (int target : specs[i].fk_targets) {
        int64_t parent_base = 1000 * (target + 1);
        row.emplace_back(parent_base +
                         static_cast<int64_t>(rng.Uniform(specs[target].rows)));
      }
      for (int j = 0; j < data_cols[i]; ++j) {
        ColumnId col = static_cast<ColumnId>(1 + specs[i].fk_targets.size() + j);
        int64_t v = static_cast<int64_t>(rng.Uniform(options.data_domain));
        if (t.column(col).type() == ValueType::kString) {
          row.emplace_back(StringFormat("v%03d", static_cast<int>(v)));
        } else {
          row.emplace_back(v);
        }
      }
      FASTQRE_RETURN_NOT_OK(t.AppendRow(row));
    }
  }

  // Declare the fks now that columns exist.
  for (int i = 0; i < options.num_tables; ++i) {
    for (size_t j = 0; j < specs[i].fk_targets.size(); ++j) {
      int target = specs[i].fk_targets[j];
      FASTQRE_RETURN_NOT_OK(db.AddForeignKey(
          "t" + std::to_string(i), StringFormat("t%d_fk%zu", i, j),
          "t" + std::to_string(target), StringFormat("t%d_key", target)));
    }
  }
  return db;
}

}  // namespace fastqre
