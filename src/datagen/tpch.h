// Deterministic TPC-H-schema data generator.
//
// The paper's empirical study uses the TPC-H benchmark database (Example
// 2.1, Figure 1). This generator reproduces the 8-table schema, its pk-fk
// graph (including the parallel L-PS join edges), and the value shapes that
// matter to QRE behaviour: unique key columns, name columns in 1:1
// correspondence with keys ("Supplier#000000001" style), and realistic
// fk fan-outs. Row counts scale linearly with `scale_factor` relative to the
// official SF=1 proportions; absolute sizes are laptop-scale.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Options for BuildTpch.
struct TpchOptions {
  /// Fraction of official TPC-H SF=1 row counts. 0.001 gives
  /// supplier=10, part=200, partsupp=800, customer=150, orders=1500,
  /// lineitem~=6000.
  double scale_factor = 0.001;
  /// PRNG seed; equal seeds give byte-identical databases.
  uint64_t seed = 42;
};

/// \brief Generates the TPC-H database with its full pk-fk schema graph.
Result<Database> BuildTpch(const TpchOptions& options = TpchOptions());

}  // namespace fastqre
