#include "datagen/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace fastqre {

namespace {

// Official TPC-H SF=1 row counts (lineitem is ~6M; we derive it as 1-7
// lines per order, matching the spec's distribution).
constexpr int64_t kSupplierSf1 = 10000;
constexpr int64_t kPartSf1 = 200000;
constexpr int64_t kCustomerSf1 = 150000;
constexpr int64_t kOrdersSf1 = 1500000;

int64_t Scaled(int64_t sf1_count, double sf, int64_t floor_count) {
  return std::max<int64_t>(floor_count,
                           static_cast<int64_t>(std::llround(sf1_count * sf)));
}

std::string PaddedName(const char* prefix, int64_t key) {
  return StringFormat("%s#%09lld", prefix, static_cast<long long>(key));
}

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// Official TPC-H nation -> region assignment (region keys per kRegionNames).
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kMfgrs[] = {"Manufacturer#1", "Manufacturer#2", "Manufacturer#3",
                        "Manufacturer#4", "Manufacturer#5"};
const char* kPartAdjectives[] = {"almond", "antique", "aquamarine", "azure",
                                 "beige", "bisque", "black", "blanched"};
const char* kPartNouns[] = {"brass", "copper", "nickel", "steel", "tin"};
const char* kTypes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                        "PROMO"};
const char* kStatuses[] = {"O", "F", "P"};
const char* kFlags[] = {"N", "R", "A"};

std::string RandomDate(Rng* rng) {
  int year = static_cast<int>(1992 + rng->Uniform(7));
  int month = static_cast<int>(1 + rng->Uniform(12));
  int day = static_cast<int>(1 + rng->Uniform(28));
  return StringFormat("%04d-%02d-%02d", year, month, day);
}

Status AddColumns(Table* t,
                  std::initializer_list<std::pair<const char*, ValueType>> cols) {
  for (const auto& [name, type] : cols) {
    FASTQRE_RETURN_NOT_OK(t->AddColumn(name, type));
  }
  return Status::OK();
}

}  // namespace

Result<Database> BuildTpch(const TpchOptions& options) {
  Database db;
  Rng rng(SplitMix64(options.seed) ^ 0x7063682d74636874ULL);

  const double sf = options.scale_factor;
  const int64_t n_supplier = Scaled(kSupplierSf1, sf, 10);
  const int64_t n_part = Scaled(kPartSf1, sf, 25);
  const int64_t n_customer = Scaled(kCustomerSf1, sf, 15);
  const int64_t n_orders = Scaled(kOrdersSf1, sf, 30);

  FASTQRE_ASSIGN_OR_RETURN(TableId region_id, db.AddTable("region"));
  FASTQRE_ASSIGN_OR_RETURN(TableId nation_id, db.AddTable("nation"));
  FASTQRE_ASSIGN_OR_RETURN(TableId supplier_id, db.AddTable("supplier"));
  FASTQRE_ASSIGN_OR_RETURN(TableId part_id, db.AddTable("part"));
  FASTQRE_ASSIGN_OR_RETURN(TableId partsupp_id, db.AddTable("partsupp"));
  FASTQRE_ASSIGN_OR_RETURN(TableId customer_id, db.AddTable("customer"));
  FASTQRE_ASSIGN_OR_RETURN(TableId orders_id, db.AddTable("orders"));
  FASTQRE_ASSIGN_OR_RETURN(TableId lineitem_id, db.AddTable("lineitem"));

  // -- region ---------------------------------------------------------------
  Table& region = db.table(region_id);
  FASTQRE_RETURN_NOT_OK(AddColumns(&region, {{"r_regionkey", ValueType::kInt64},
                                             {"r_name", ValueType::kString},
                                             {"r_comment", ValueType::kString}}));
  for (int64_t k = 0; k < 5; ++k) {
    FASTQRE_RETURN_NOT_OK(region.AppendRow(
        {Value(k), Value(kRegionNames[k]), Value("region " + rng.String(12))}));
  }

  // -- nation ---------------------------------------------------------------
  Table& nation = db.table(nation_id);
  FASTQRE_RETURN_NOT_OK(AddColumns(&nation, {{"n_nationkey", ValueType::kInt64},
                                             {"n_name", ValueType::kString},
                                             {"n_regionkey", ValueType::kInt64},
                                             {"n_comment", ValueType::kString}}));
  for (int64_t k = 0; k < 25; ++k) {
    FASTQRE_RETURN_NOT_OK(nation.AppendRow(
        {Value(k), Value(kNationNames[k]),
         Value(static_cast<int64_t>(kNationRegion[k])),
         Value("nation " + rng.String(12))}));
  }

  // -- supplier -------------------------------------------------------------
  Table& supplier = db.table(supplier_id);
  FASTQRE_RETURN_NOT_OK(
      AddColumns(&supplier, {{"s_suppkey", ValueType::kInt64},
                             {"s_name", ValueType::kString},
                             {"s_address", ValueType::kString},
                             {"s_nationkey", ValueType::kInt64},
                             {"s_phone", ValueType::kString},
                             {"s_acctbal", ValueType::kDouble}}));
  supplier.ReserveRows(n_supplier);
  for (int64_t k = 1; k <= n_supplier; ++k) {
    FASTQRE_RETURN_NOT_OK(supplier.AppendRow(
        {Value(k), Value(PaddedName("Supplier", k)), Value(rng.String(16)),
         Value(static_cast<int64_t>(rng.Uniform(25))),
         Value(StringFormat("%02d-%03d-%03d-%04d",
                            static_cast<int>(10 + rng.Uniform(25)),
                            static_cast<int>(rng.Uniform(1000)),
                            static_cast<int>(rng.Uniform(1000)),
                            static_cast<int>(rng.Uniform(10000)))),
         Value(std::round(rng.UniformDouble() * 1099999.0 - 99999.0) / 100.0)}));
  }

  // -- part -----------------------------------------------------------------
  Table& part = db.table(part_id);
  FASTQRE_RETURN_NOT_OK(AddColumns(&part, {{"p_partkey", ValueType::kInt64},
                                           {"p_name", ValueType::kString},
                                           {"p_mfgr", ValueType::kString},
                                           {"p_brand", ValueType::kString},
                                           {"p_type", ValueType::kString},
                                           {"p_size", ValueType::kInt64},
                                           {"p_retailprice", ValueType::kDouble}}));
  part.ReserveRows(n_part);
  for (int64_t k = 1; k <= n_part; ++k) {
    int mfgr = static_cast<int>(rng.Uniform(5));
    FASTQRE_RETURN_NOT_OK(part.AppendRow(
        {Value(k),
         Value(std::string(kPartAdjectives[rng.Uniform(8)]) + " " +
               kPartNouns[rng.Uniform(5)] + " " + PaddedName("P", k)),
         Value(kMfgrs[mfgr]),
         Value(StringFormat("Brand#%d%d", mfgr + 1,
                            static_cast<int>(1 + rng.Uniform(5)))),
         Value(std::string(kTypes[rng.Uniform(6)]) + " " +
               kPartNouns[rng.Uniform(5)]),
         Value(static_cast<int64_t>(1 + rng.Uniform(50))),
         Value(std::round((90000.0 + (k % 200) * 100.0 +
                           (k % 1000)) ) / 100.0)}));
  }

  // -- partsupp: exactly 4 suppliers per part (TPC-H rule) --------------------
  Table& partsupp = db.table(partsupp_id);
  FASTQRE_RETURN_NOT_OK(
      AddColumns(&partsupp, {{"ps_partkey", ValueType::kInt64},
                             {"ps_suppkey", ValueType::kInt64},
                             {"ps_availqty", ValueType::kInt64},
                             {"ps_supplycost", ValueType::kDouble}}));
  partsupp.ReserveRows(n_part * 4);
  for (int64_t p = 1; p <= n_part; ++p) {
    for (int j = 0; j < 4; ++j) {
      // The spec's supplier spreading formula keeps (part, supplier) pairs
      // unique.
      int64_t s = 1 + (p + j * (n_supplier / 4 + 1) + (p - 1) / n_supplier) %
                          n_supplier;
      FASTQRE_RETURN_NOT_OK(partsupp.AppendRow(
          {Value(p), Value(s), Value(static_cast<int64_t>(1 + rng.Uniform(9999))),
           Value(std::round(rng.UniformDouble() * 100000.0) / 100.0)}));
    }
  }

  // -- customer ---------------------------------------------------------------
  Table& customer = db.table(customer_id);
  FASTQRE_RETURN_NOT_OK(
      AddColumns(&customer, {{"c_custkey", ValueType::kInt64},
                             {"c_name", ValueType::kString},
                             {"c_address", ValueType::kString},
                             {"c_nationkey", ValueType::kInt64},
                             {"c_phone", ValueType::kString},
                             {"c_acctbal", ValueType::kDouble},
                             {"c_mktsegment", ValueType::kString}}));
  customer.ReserveRows(n_customer);
  for (int64_t k = 1; k <= n_customer; ++k) {
    FASTQRE_RETURN_NOT_OK(customer.AppendRow(
        {Value(k), Value(PaddedName("Customer", k)), Value(rng.String(16)),
         Value(static_cast<int64_t>(rng.Uniform(25))),
         Value(StringFormat("%02d-%03d-%03d-%04d",
                            static_cast<int>(10 + rng.Uniform(25)),
                            static_cast<int>(rng.Uniform(1000)),
                            static_cast<int>(rng.Uniform(1000)),
                            static_cast<int>(rng.Uniform(10000)))),
         Value(std::round(rng.UniformDouble() * 1099999.0 - 99999.0) / 100.0),
         Value(kSegments[rng.Uniform(5)])}));
  }

  // -- orders -----------------------------------------------------------------
  Table& orders = db.table(orders_id);
  FASTQRE_RETURN_NOT_OK(
      AddColumns(&orders, {{"o_orderkey", ValueType::kInt64},
                           {"o_custkey", ValueType::kInt64},
                           {"o_orderstatus", ValueType::kString},
                           {"o_totalprice", ValueType::kDouble},
                           {"o_orderdate", ValueType::kString},
                           {"o_orderpriority", ValueType::kString},
                           {"o_clerk", ValueType::kString}}));
  orders.ReserveRows(n_orders);
  std::vector<int64_t> order_keys;
  order_keys.reserve(n_orders);
  for (int64_t k = 1; k <= n_orders; ++k) {
    int64_t custkey = 1 + static_cast<int64_t>(rng.Uniform(n_customer));
    order_keys.push_back(k);
    FASTQRE_RETURN_NOT_OK(orders.AppendRow(
        {Value(k), Value(custkey), Value(kStatuses[rng.Uniform(3)]),
         Value(std::round(rng.UniformDouble() * 45000000.0 + 85000.0) / 100.0),
         Value(RandomDate(&rng)), Value(kPriorities[rng.Uniform(5)]),
         Value(PaddedName("Clerk", static_cast<int64_t>(
                                       1 + rng.Uniform(std::max<int64_t>(
                                               1, n_orders / 1000 + 1)))))}));
  }

  // -- lineitem: 1-7 lines per order; (partkey, suppkey) drawn from partsupp --
  Table& lineitem = db.table(lineitem_id);
  FASTQRE_RETURN_NOT_OK(
      AddColumns(&lineitem, {{"l_orderkey", ValueType::kInt64},
                             {"l_partkey", ValueType::kInt64},
                             {"l_suppkey", ValueType::kInt64},
                             {"l_linenumber", ValueType::kInt64},
                             {"l_quantity", ValueType::kInt64},
                             {"l_extendedprice", ValueType::kDouble},
                             {"l_discount", ValueType::kDouble},
                             {"l_returnflag", ValueType::kString},
                             {"l_shipdate", ValueType::kString}}));
  lineitem.ReserveRows(n_orders * 4);
  for (int64_t ok : order_keys) {
    int nlines = static_cast<int>(1 + rng.Uniform(7));
    for (int ln = 1; ln <= nlines; ++ln) {
      // Sample a partsupp row so the composite L-PS relationship is real.
      RowId ps_row = static_cast<RowId>(rng.Uniform(partsupp.num_rows()));
      const auto& dict = *db.dictionary();
      int64_t pkey = dict.Get(partsupp.column(0).at(ps_row)).AsInt64();
      int64_t skey = dict.Get(partsupp.column(1).at(ps_row)).AsInt64();
      FASTQRE_RETURN_NOT_OK(lineitem.AppendRow(
          {Value(ok), Value(pkey), Value(skey), Value(static_cast<int64_t>(ln)),
           Value(static_cast<int64_t>(1 + rng.Uniform(50))),
           Value(std::round(rng.UniformDouble() * 9500000.0 + 90000.0) / 100.0),
           Value(std::round(rng.UniformDouble() * 10.0) / 100.0),
           Value(kFlags[rng.Uniform(3)]), Value(RandomDate(&rng))}));
    }
  }

  // -- pk-fk schema graph (Figure 1) ------------------------------------------
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("nation", "n_regionkey", "region", "r_regionkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("supplier", "s_nationkey", "nation", "n_nationkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("customer", "c_nationkey", "nation", "n_nationkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("partsupp", "ps_partkey", "part", "p_partkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("partsupp", "ps_suppkey", "supplier", "s_suppkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("orders", "o_custkey", "customer", "c_custkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("lineitem", "l_partkey", "part", "p_partkey"));
  FASTQRE_RETURN_NOT_OK(
      db.AddForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey"));
  // Figure 1's L-PS adjacency: parallel single-column join edges.
  {
    FASTQRE_ASSIGN_OR_RETURN(ColumnId l_pk, lineitem.FindColumn("l_partkey"));
    FASTQRE_ASSIGN_OR_RETURN(ColumnId ps_pk, partsupp.FindColumn("ps_partkey"));
    FASTQRE_ASSIGN_OR_RETURN(ColumnId l_sk, lineitem.FindColumn("l_suppkey"));
    FASTQRE_ASSIGN_OR_RETURN(ColumnId ps_sk, partsupp.FindColumn("ps_suppkey"));
    db.AddJoinEdge(lineitem_id, l_pk, partsupp_id, ps_pk);
    db.AddJoinEdge(lineitem_id, l_sk, partsupp_id, ps_sk);
  }
  return db;
}

}  // namespace fastqre
