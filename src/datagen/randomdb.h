// Random-database generator for property-based testing.
//
// Builds a database with a randomly shaped (but always connected) pk-fk
// schema graph and random value distributions, so property tests can assert
// QRE invariants (e.g. "FastQRE finds a generating query for any R_out that
// was actually produced by a CPJ query") across many schema shapes.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Parameters of the random database.
struct RandomDbOptions {
  uint64_t seed = 7;
  int num_tables = 4;
  /// Rows of table i: uniform in [min_rows, max_rows].
  int min_rows = 30;
  int max_rows = 120;
  /// Extra non-key data columns per table: uniform in [1, max_data_columns].
  int max_data_columns = 3;
  /// Distinct-value pool size for data columns (smaller => more duplication
  /// and more accidental coherence, which stresses the ranking machinery).
  int data_domain = 40;
  /// Probability a data column is a string column (vs int64).
  double string_column_prob = 0.5;
  /// Extra random fk edges beyond the spanning tree (creates cycles and
  /// parallel edges in G_S).
  int extra_fk_edges = 1;
};

/// \brief Generates a random database. Table i is named "t<i>"; every table
/// has a unique int64 key column "t<i>_key"; fks are "t<i>_fk<j>" columns.
/// The schema graph is connected.
Result<Database> BuildRandomDb(const RandomDbOptions& options = RandomDbOptions());

}  // namespace fastqre
