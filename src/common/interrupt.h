// The engine-wide interrupt-poll stride.
//
// Every cancellable loop — the pipelined cursor, the block executor's
// morsels, walk-cache materialization, and (since the hash-index build
// became interruptible) storage-layer index construction — polls its
// interrupt callback every (kInterruptPollMask + 1) work items, so a
// --budget-ms expiry, Cancel(), or a rank-cancellation signal lands within a
// bounded amount of extra work in *any* phase. Defined here in common/ (not
// engine/) because the storage layer must not depend on the engine; the
// historical alias in engine/executor.h keeps existing call sites working.
#pragma once

#include <cstdint>

namespace fastqre {

/// \brief Interrupt-poll stride: poll every (mask + 1) work items.
inline constexpr uint64_t kInterruptPollMask = 0xfff;

}  // namespace fastqre
