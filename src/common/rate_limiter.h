// Token-bucket rate limiting for the admission controller (DESIGN.md §15).
//
// A TokenBucket holds up to `burst` tokens and refills at `rate_per_second`.
// Each admitted request costs one token; an empty bucket means the caller
// is over its rate and the request is rejected with a typed error (the
// server never silently queues rate-limited work — honest back-pressure).
//
// Time is an explicit argument rather than a hidden clock read so the
// admission tests are deterministic: they drive the bucket with a synthetic
// timeline instead of sleeping. Callers in the server pass a monotonic
// Timer's ElapsedSeconds().
//
// Not internally synchronized: the AdmissionController calls it under its
// own mutex (one bucket per tenant, all mutations already serialized).
#pragma once

#include <algorithm>

namespace fastqre {

/// \brief Deterministic token bucket: capacity `burst`, refill
/// `rate_per_second`. A rate of 0 disables limiting (TryAcquire always
/// succeeds).
class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second < 0 ? 0 : rate_per_second),
        burst_(burst < 1 ? 1 : burst),
        tokens_(burst_) {}

  /// Refills for the elapsed time and takes `cost` tokens if available.
  /// `now_seconds` must be monotone non-decreasing across calls (a step
  /// backwards is clamped to no refill, never to a negative balance).
  bool TryAcquire(double now_seconds, double cost = 1.0) {
    if (rate_ <= 0) return true;
    Refill(now_seconds);
    if (tokens_ + 1e-9 < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Tokens available at `now_seconds` (refills as a side effect).
  double Available(double now_seconds) {
    Refill(now_seconds);
    return tokens_;
  }

  double rate_per_second() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now_seconds) {
    const double dt = std::max(0.0, now_seconds - last_seconds_);
    last_seconds_ = std::max(last_seconds_, now_seconds);
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
  }

  const double rate_;
  const double burst_;
  double tokens_;
  double last_seconds_ = 0.0;
};

}  // namespace fastqre
