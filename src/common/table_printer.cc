#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/strings.h"

namespace fastqre {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      line += " " + row[i] + std::string(width[i] - row[i].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (size_t w : width) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out;
  out += "== " + title_ + " ==\n";
  out += rule;
  out += render_row(header_);
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

std::string FormatDuration(double seconds) {
  if (seconds < 0) return "-";
  if (seconds < 1e-3) return StringFormat("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return StringFormat("%.1fms", seconds * 1e3);
  if (seconds < 120.0) return StringFormat("%.2fs", seconds);
  int64_t total = static_cast<int64_t>(seconds);
  return StringFormat("%ldm%02lds", static_cast<long>(total / 60),
                      static_cast<long>(total % 60));
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) out += ',';
    out += *it;
    ++c;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace fastqre
