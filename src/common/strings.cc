#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fastqre {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace fastqre
