// Clang Thread Safety Analysis support (DESIGN.md §10).
//
// Two layers:
//  * The raw annotation macros (GUARDED_BY, REQUIRES, ACQUIRE, ...) expand
//    to Clang's thread-safety attributes under Clang and to nothing under
//    any other compiler, so the GCC build is unaffected.
//  * Annotated lock types (Mutex, SharedMutex, CondVar) and RAII lockers
//    (MutexLock, ReaderMutexLock, WriterMutexLock) wrapping the standard
//    primitives. All locking in src/ goes through these wrappers: Clang's
//    analysis cannot see through std::lock_guard/std::unique_lock on
//    libstdc++'s unannotated std::mutex, so raw standard types would make
//    every GUARDED_BY field a false positive.
//
// The CI `thread-safety` job builds the tree with
//   clang++ -Wthread-safety -Werror=thread-safety
// and `tools/check_thread_safety.sh` additionally proves the analysis has
// teeth (a deliberately unguarded access must fail to compile).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && !defined(SWIG)
#define FASTQRE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define FASTQRE_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) FASTQRE_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY FASTQRE_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) FASTQRE_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) FASTQRE_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  FASTQRE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  FASTQRE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  FASTQRE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FASTQRE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  FASTQRE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FASTQRE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  FASTQRE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FASTQRE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  FASTQRE_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  FASTQRE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) FASTQRE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FASTQRE_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) FASTQRE_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  FASTQRE_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace fastqre {

/// \brief Annotated exclusive mutex. Prefer the RAII lockers below; Lock()
/// and Unlock() exist for code whose critical sections cannot be
/// scope-shaped (the analysis still checks them).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Annotated reader-writer mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  // Generic release: the scoped object holds a *shared* capability, and
  // release_capability (exclusive) would mismatch under Clang's analysis.
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable usable with Mutex.
///
/// Wait() takes one atomic release-sleep-reacquire step; callers loop on
/// their predicate in the enclosing (analyzed) function instead of passing a
/// lambda, which Clang's analysis could not relate to the held lock:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Precondition: `mu` is held. On return `mu` is held again.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release() so the unique_lock destructor does not unlock it —
    // ownership stays with the caller's MutexLock / Lock() call.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed Wait(): returns false iff `seconds` elapsed with no
  /// notification. Spurious wakeups return true — callers loop on their
  /// predicate either way, so the distinction only matters for giving up.
  bool WaitFor(Mutex& mu, double seconds) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(native, std::chrono::duration<double>(seconds));
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fastqre
