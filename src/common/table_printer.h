// Aligned ASCII table printing for the paper-style benchmark harnesses.
#pragma once

#include <string>
#include <vector>

namespace fastqre {

/// \brief Accumulates rows of string cells and prints them as an aligned
/// ASCII table, the way the bench_e* binaries report paper-style results.
class TablePrinter {
 public:
  /// \param title Printed above the table.
  /// \param header Column names.
  explicit TablePrinter(std::string title, std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (title, rule, header, rule, rows, rule).
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats seconds compactly: "3.2us", "14ms", "2.51s", "4m12s".
std::string FormatDuration(double seconds);

/// \brief Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t n);

}  // namespace fastqre
