// Relaxed atomic counters that stay drop-in compatible with plain integral
// (resp. floating) struct fields: copyable, assignable, implicitly
// convertible, with ++ / +=. Used for statistics that are incremented from
// concurrent validation workers and read after the workers have joined (or
// merely approximately while they run) — relaxed ordering is sufficient
// because the counters never guard other data.
//
// Memory-order policy (DESIGN.md §10, enforced by tools/lint_invariants.py
// rule atomic-order — every atomic op names its order; seq_cst is banned):
//   * memory_order_relaxed — monotonic counters and statistics whose values
//     never gate the visibility of other data. That is every atomic in this
//     file and in QreStats/IndexBuildStats.
//   * acquire/release — flag handoff where a reader observing the flag must
//     also observe writes made before it was set (none currently; cross-
//     thread publication goes through mutexes, see thread_annotations.h).
//   * seq_cst — banned: the default order hides the intended protocol and
//     costs fences; if an algorithm truly needs total ordering, document it
//     and suppress per-site (not permitted in src/qre/ or src/engine/).
#pragma once

#include <atomic>
#include <cstdint>

namespace fastqre {

/// \brief A copyable uint64 counter with relaxed atomic increments.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) noexcept : v_(v) {}  // NOLINT: implicit
  RelaxedCounter(const RelaxedCounter& o) noexcept : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const noexcept { return value(); }  // NOLINT: implicit

  uint64_t operator++() noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t operator++(int) noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_;
};

/// \brief A copyable double accumulator with relaxed atomic adds.
class RelaxedDouble {
 public:
  RelaxedDouble(double v = 0.0) noexcept : v_(v) {}  // NOLINT: implicit
  RelaxedDouble(const RelaxedDouble& o) noexcept : v_(o.value()) {}
  RelaxedDouble& operator=(const RelaxedDouble& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedDouble& operator=(double v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  operator double() const noexcept { return value(); }  // NOLINT: implicit

  RelaxedDouble& operator+=(double d) noexcept {
    // fetch_add on atomic<double> is C++20; use a CAS loop for portability
    // with libstdc++ versions that lack the floating-point overload.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
    return *this;
  }

 private:
  std::atomic<double> v_;
};

}  // namespace fastqre
