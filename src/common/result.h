// Result<T>: a value-or-Status union, following arrow::Result.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fastqre {

/// \brief Holds either a successfully computed T or the Status explaining
/// why it could not be computed.
///
/// Typical usage:
/// \code
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit on purpose, mirroring arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error Status. Aborts (in debug) if the status is OK:
  /// an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    if (!ok()) internal::DieOnError(status_, __FILE__, __LINE__);
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) internal::DieOnError(status_, __FILE__, __LINE__);
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) internal::DieOnError(status_, __FILE__, __LINE__);
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function.
#define FASTQRE_ASSIGN_OR_RETURN(lhs, rexpr)        \
  FASTQRE_ASSIGN_OR_RETURN_IMPL(                    \
      FASTQRE_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define FASTQRE_CONCAT_INNER_(a, b) a##b
#define FASTQRE_CONCAT_(a, b) FASTQRE_CONCAT_INNER_(a, b)

#define FASTQRE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie();

}  // namespace fastqre
