// Deterministic fault injection for the resource-governed search path
// (DESIGN.md §11).
//
// A FaultInjector holds rules parsed from QreOptions::fault_spec (or, when
// that is empty, the FASTQRE_FAULTS environment variable):
//
//     spec  := rule ("," rule)*
//     rule  := <site> "=" <kind> [ "@" <n> ]
//     kind  := "alloc-fail" | "cancel" | "delay"
//
// `site` names an injection point from the fault-site registry (DESIGN.md
// §11 lists them; e.g. index-build, walk-cache-build, mapping-frontier,
// parallel-worker). A rule fires from the <n>-th hit of its site onward
// (default 1), counted per rule with a relaxed atomic, so a given spec
// produces the same injection schedule on every run — faults are part of
// the reproducible input, not a source of nondeterminism.
//
// Kinds:
//   alloc-fail  The governor charge at the site reports failure: optional
//               allocations degrade (the caller falls back), required ones
//               surface as memory exhaustion.
//   cancel      The engine's CancellationToken is cancelled, exactly as if
//               FastQre::Cancel() had been called at that moment.
//   delay       The hitting thread sleeps briefly (handled inside Hit()),
//               widening race windows for the sanitizer jobs.
//
// Disabled-path cost is a single null-pointer check at each site: engines
// without a spec never construct an injector.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/result.h"

namespace fastqre {

/// \brief What an injection site should simulate on one hit. Multiple rules
/// may target the same site, so the actions are independent flags.
struct FaultActions {
  bool alloc_fail = false;
  bool cancel = false;
};

/// \brief Deterministic fault scheduler. Thread-safe: Hit() may be called
/// concurrently from validation workers and cache builders.
class FaultInjector {
 public:
  /// Parses a fault spec (see file comment). Returns InvalidArgument on a
  /// malformed rule; an empty spec yields an injector with no rules.
  static Result<std::unique_ptr<FaultInjector>> Parse(const std::string& spec);

  /// Records one hit of `site` and returns the actions that fired. A delay
  /// rule sleeps right here before returning.
  FaultActions Hit(const char* site);

  size_t num_rules() const { return rules_.size(); }

 private:
  enum class Kind { kAllocFail, kCancel, kDelay };
  struct Rule {
    std::string site;
    Kind kind = Kind::kAllocFail;
    uint64_t after = 1;        // fire from this hit (1-based) onward
    RelaxedCounter hits = 0;   // per-rule hit tally (relaxed: monotone count)
  };

  std::vector<Rule> rules_;
};

}  // namespace fastqre
