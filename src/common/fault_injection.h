// Deterministic fault injection for the resource-governed search path
// (DESIGN.md §11).
//
// A FaultInjector holds rules parsed from QreOptions::fault_spec (or, when
// that is empty, the FASTQRE_FAULTS environment variable):
//
//     spec  := rule ("," rule)*
//     rule  := <site> "=" <kind> [ "@" <n> [ ".." <m> ] ]
//     kind  := "alloc-fail" | "cancel" | "delay"
//            | "short-write" | "reset" | "stall" | "garbage"
//
// `site` names an injection point from the fault-site registry (DESIGN.md
// §11 lists them; e.g. index-build, walk-cache-build, mapping-frontier,
// parallel-worker). A rule fires from the <n>-th hit of its site onward
// (default 1), or only on hits <n>..<m> inclusive when a window is given —
// windows are what make destructive wire kinds recoverable: "reset@7..7"
// kills exactly one frame write and lets the retried stream through.
// Hits are counted per rule with a relaxed atomic, so a given spec
// produces the same injection schedule on every run — faults are part of
// the reproducible input, not a source of nondeterminism.
//
// Kinds:
//   alloc-fail  The governor charge at the site reports failure: optional
//               allocations degrade (the caller falls back), required ones
//               surface as memory exhaustion.
//   cancel      The engine's CancellationToken is cancelled, exactly as if
//               FastQre::Cancel() had been called at that moment.
//   delay       The hitting thread sleeps briefly (handled inside Hit()),
//               widening race windows for the sanitizer jobs.
//
// Wire kinds (DESIGN.md §15.5) — interpreted by the server's socket layer
// at its wire-accept / wire-read / wire-write sites, so hostile-network
// failure modes replay deterministically in ctest:
//   short-write The frame is written in 1-byte send() calls, exercising
//               peer-side reassembly and the server's partial-write loop.
//   reset       The connection is aborted with a TCP RST (SO_LINGER 0) at
//               the site, exactly as a dying peer or middlebox would.
//   stall       The hitting thread sleeps ~50 ms (handled inside Hit()),
//               simulating a network stall long enough to trip the
//               io-deadline paths when they are configured tight.
//   garbage     A few non-protocol bytes are injected into the stream at
//               the site, exercising the framing-error paths.
//
// Disabled-path cost is a single null-pointer check at each site: engines
// without a spec never construct an injector.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/result.h"

namespace fastqre {

/// \brief What an injection site should simulate on one hit. Multiple rules
/// may target the same site, so the actions are independent flags.
struct FaultActions {
  bool alloc_fail = false;
  bool cancel = false;
  // Wire kinds (sleep-free flags; `stall` and `delay` sleep inside Hit()).
  bool short_write = false;
  bool reset = false;
  bool garbage = false;
};

/// \brief Deterministic fault scheduler. Thread-safe: Hit() may be called
/// concurrently from validation workers and cache builders.
class FaultInjector {
 public:
  /// Parses a fault spec (see file comment). Returns InvalidArgument on a
  /// malformed rule; an empty spec yields an injector with no rules.
  static Result<std::unique_ptr<FaultInjector>> Parse(const std::string& spec);

  /// Records one hit of `site` and returns the actions that fired. A delay
  /// rule sleeps right here before returning.
  FaultActions Hit(const char* site);

  size_t num_rules() const { return rules_.size(); }

 private:
  enum class Kind {
    kAllocFail,
    kCancel,
    kDelay,
    kShortWrite,
    kReset,
    kStall,
    kGarbage
  };
  struct Rule {
    std::string site;
    Kind kind = Kind::kAllocFail;
    uint64_t after = 1;        // fire from this hit (1-based) onward
    uint64_t until = 0;        // last firing hit (inclusive); 0 = open-ended
    RelaxedCounter hits = 0;   // per-rule hit tally (relaxed: monotone count)
  };

  std::vector<Rule> rules_;
};

}  // namespace fastqre
