// Deterministic pseudo-random number generation. All data generation in this
// repo is seeded, so every test, example and benchmark is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastqre {

/// \brief SplitMix64 mixer; used for seeding and cheap stateless hashing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief xoshiro256** PRNG: fast, high-quality, deterministic across
/// platforms (unlike std::mt19937 distributions, which vary by stdlib).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    for (auto& si : s_) {
      seed = SplitMix64(seed);
      si = seed;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool Chance(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

  /// Random lowercase ASCII string of the given length.
  std::string String(size_t len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace fastqre
