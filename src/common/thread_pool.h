// Minimal threading primitives for the parallel validation pipeline:
//
//  * BoundedQueue<T> — a blocking bounded MPMC queue. The composer thread
//    pushes ranked candidates; validation workers pop them. The bound
//    provides back-pressure so the composer never races arbitrarily far
//    ahead of validation (candidate queries hold materialized PJQuery
//    objects and the whole point of ranking is to validate the front of
//    the order first).
//  * ThreadPool — a fixed set of workers draining a task queue, with
//    Wait() to quiesce. Used by stress tests and benchmarks; the QRE
//    driver itself spawns dedicated per-run workers because their
//    lifetime matches one mapping's validation phase exactly.
//  * RunMorsels — a per-batch fork/join over a shared morsel counter for
//    intra-candidate parallelism (DESIGN.md §12). The caller participates,
//    so a batch completes even when every pool worker is busy with some
//    other candidate's batch; ThreadPool::Wait() (which quiesces the whole
//    pool) is deliberately not used.
//
// Locking uses the annotated Mutex/CondVar wrappers (DESIGN.md §10) so the
// guarded-field invariants are checked by Clang's -Wthread-safety pass.
// Condition waits are written as explicit while-loops: the predicate then
// lives in the analyzed function body rather than in a lambda the analysis
// cannot relate to the held lock.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace fastqre {

/// \brief Blocking bounded multi-producer multi-consumer FIFO queue.
///
/// Close() wakes all blocked producers and consumers: pending Push() calls
/// return false, Pop() keeps draining buffered items and returns false once
/// the queue is empty. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while the queue is full. Returns false (dropping `item`) if the
  /// queue was closed before space became available.
  bool Push(T item) {
    {
      MutexLock lock(&mu_);
      while (items_.size() >= capacity_ && !closed_) not_full_.Wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns false only when the
  /// queue is closed *and* drained.
  bool Pop(T* out) {
    {
      MutexLock lock(&mu_);
      while (items_.empty() && !closed_) not_empty_.Wait(mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return true;
  }

  /// Idempotent. After Close(), producers fail fast and consumers drain.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

/// \brief Fixed-size pool of worker threads draining an unbounded task queue.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    work_ready_.NotifyAll();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the task queue is unbounded).
  void Submit(std::function<void()> task) {
    {
      MutexLock lock(&mu_);
      tasks_.push_back(std::move(task));
      ++pending_;
    }
    work_ready_.NotifyOne();
  }

  /// Blocks until every task submitted so far has finished running.
  void Wait() {
    MutexLock lock(&mu_);
    while (pending_ != 0) idle_.Wait(mu_);
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (tasks_.empty() && !stopping_) work_ready_.Wait(mu_);
        if (tasks_.empty()) return;  // stopping_ && drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
      {
        MutexLock lock(&mu_);
        if (--pending_ == 0) idle_.NotifyAll();
      }
    }
  }

  Mutex mu_;
  CondVar work_ready_;
  CondVar idle_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  size_t pending_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs fn(morsel_index) for every index in [0, num_morsels), claiming
/// indexes from a shared atomic counter: the calling thread always drains the
/// counter itself, and up to `extra_workers` helper tasks are submitted to
/// `pool` (when non-null) to steal morsels concurrently. Returns only after
/// every claimed morsel has finished, including those run by helpers.
///
/// Deadlock-free by construction: completion never depends on pool capacity
/// (the caller alone can finish the batch), and helpers that start after the
/// counter is drained exit immediately. Determinism is the caller's job: fn
/// must write only to its own morsel's slot, so the merge order is fixed by
/// morsel index regardless of which thread ran which morsel.
inline void RunMorsels(ThreadPool* pool, int extra_workers, size_t num_morsels,
                       const std::function<void(size_t)>& fn) {
  if (num_morsels == 0) return;
  std::atomic<size_t> next{0};
  auto drain = [&next, num_morsels, &fn] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < num_morsels;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  if (pool == nullptr || extra_workers <= 0 || num_morsels == 1) {
    drain();
    return;
  }
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(extra_workers), num_morsels - 1);
  // Per-batch join state: helpers decrement `live` when their drain returns;
  // the caller waits for zero after finishing its own drain. The state lives
  // on this stack frame, which outlives every helper because of that wait.
  Mutex mu;
  CondVar all_done;
  size_t live = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([&drain, &mu, &all_done, &live] {
      drain();
      MutexLock lock(&mu);
      if (--live == 0) all_done.NotifyAll();
    });
  }
  drain();
  MutexLock lock(&mu);
  while (live > 0) all_done.Wait(mu);
}

}  // namespace fastqre
