// Minimal threading primitives for the parallel validation pipeline:
//
//  * BoundedQueue<T> — a blocking bounded MPMC queue. The composer thread
//    pushes ranked candidates; validation workers pop them. The bound
//    provides back-pressure so the composer never races arbitrarily far
//    ahead of validation (candidate queries hold materialized PJQuery
//    objects and the whole point of ranking is to validate the front of
//    the order first).
//  * ThreadPool — a fixed set of workers draining a task queue, with
//    Wait() to quiesce. Used by stress tests and benchmarks; the QRE
//    driver itself spawns dedicated per-run workers because their
//    lifetime matches one mapping's validation phase exactly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace fastqre {

/// \brief Blocking bounded multi-producer multi-consumer FIFO queue.
///
/// Close() wakes all blocked producers and consumers: pending Push() calls
/// return false, Pop() keeps draining buffered items and returns false once
/// the queue is empty. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocks while the queue is full. Returns false (dropping `item`) if the
  /// queue was closed before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns false only when the
  /// queue is closed *and* drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Idempotent. After Close(), producers fail fast and consumers drain.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// \brief Fixed-size pool of worker threads draining an unbounded task queue.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the task queue is unbounded).
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
      ++pending_;
    }
    work_ready_.notify_one();
  }

  /// Blocks until every task submitted so far has finished running.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] { return pending_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_ready_.wait(lock, [&] { return !tasks_.empty() || stopping_; });
        if (tasks_.empty()) return;  // stopping_ && drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  size_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fastqre
