// Small string utilities shared by CSV parsing, SQL rendering and the
// benchmark table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fastqre {

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// \brief Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief Strips leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view s);

/// \brief True if `s` parses fully as a signed 64-bit integer.
bool ParseInt64(std::string_view s, int64_t* out);

/// \brief True if `s` parses fully as a double.
bool ParseDouble(std::string_view s, double* out);

/// \brief ASCII lowercasing.
std::string ToLower(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fastqre
