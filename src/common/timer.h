// Wall-clock timing for the benchmark harnesses and driver statistics.
#pragma once

#include <chrono>
#include <cstdint>

namespace fastqre {

/// \brief Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fastqre
