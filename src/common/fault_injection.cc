#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/strings.h"

namespace fastqre {
namespace {

// Sleep applied by a `delay` rule: long enough to reorder racing workers
// around the rank barrier under TSan, short enough that a matrix of delayed
// runs stays fast.
constexpr std::chrono::microseconds kDelaySleep{500};

}  // namespace

Result<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& spec) {
  auto injector = std::make_unique<FaultInjector>();
  for (const std::string& part : SplitString(spec, ',')) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault rule '" + part +
                                     "' is not of the form site=kind[@n]");
    }
    Rule rule;
    rule.site = part.substr(0, eq);
    std::string kind = part.substr(eq + 1);
    size_t at = kind.find('@');
    if (at != std::string::npos) {
      int64_t n = 0;
      if (!ParseInt64(kind.substr(at + 1), &n) || n < 1) {
        return Status::InvalidArgument("fault rule '" + part +
                                       "' has a bad hit count (want >= 1)");
      }
      rule.after = static_cast<uint64_t>(n);
      kind = kind.substr(0, at);
    }
    if (kind == "alloc-fail") {
      rule.kind = Kind::kAllocFail;
    } else if (kind == "cancel") {
      rule.kind = Kind::kCancel;
    } else if (kind == "delay") {
      rule.kind = Kind::kDelay;
    } else {
      return Status::InvalidArgument(
          "fault rule '" + part +
          "' has unknown kind '" + kind +
          "' (want alloc-fail, cancel or delay)");
    }
    injector->rules_.push_back(std::move(rule));
  }
  return injector;
}

FaultActions FaultInjector::Hit(const char* site) {
  FaultActions actions;
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    uint64_t hit = ++rule.hits;
    if (hit < rule.after) continue;
    switch (rule.kind) {
      case Kind::kAllocFail:
        actions.alloc_fail = true;
        break;
      case Kind::kCancel:
        actions.cancel = true;
        break;
      case Kind::kDelay:
        std::this_thread::sleep_for(kDelaySleep);
        break;
    }
  }
  return actions;
}

}  // namespace fastqre
