#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/strings.h"

namespace fastqre {
namespace {

// Sleep applied by a `delay` rule: long enough to reorder racing workers
// around the rank barrier under TSan, short enough that a matrix of delayed
// runs stays fast.
constexpr std::chrono::microseconds kDelaySleep{500};

// Sleep applied by a `stall` rule: sized like a network hiccup — long enough
// to trip a tight io-deadline in the chaos integration runs, short enough
// that a matrix of stalled runs stays fast.
constexpr std::chrono::milliseconds kStallSleep{50};

}  // namespace

Result<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& spec) {
  auto injector = std::make_unique<FaultInjector>();
  for (const std::string& part : SplitString(spec, ',')) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault rule '" + part +
                                     "' is not of the form site=kind[@n]");
    }
    Rule rule;
    rule.site = part.substr(0, eq);
    std::string kind = part.substr(eq + 1);
    size_t at = kind.find('@');
    if (at != std::string::npos) {
      std::string range = kind.substr(at + 1);
      kind = kind.substr(0, at);
      std::string first = range;
      const size_t dots = range.find("..");
      if (dots != std::string::npos) {
        first = range.substr(0, dots);
        int64_t m = 0;
        if (!ParseInt64(range.substr(dots + 2), &m) || m < 1) {
          return Status::InvalidArgument(
              "fault rule '" + part + "' has a bad window end (want >= 1)");
        }
        rule.until = static_cast<uint64_t>(m);
      }
      int64_t n = 0;
      if (!ParseInt64(first, &n) || n < 1) {
        return Status::InvalidArgument("fault rule '" + part +
                                       "' has a bad hit count (want >= 1)");
      }
      rule.after = static_cast<uint64_t>(n);
      if (rule.until != 0 && rule.until < rule.after) {
        return Status::InvalidArgument(
            "fault rule '" + part + "' has an empty window (m < n)");
      }
    }
    if (kind == "alloc-fail") {
      rule.kind = Kind::kAllocFail;
    } else if (kind == "cancel") {
      rule.kind = Kind::kCancel;
    } else if (kind == "delay") {
      rule.kind = Kind::kDelay;
    } else if (kind == "short-write") {
      rule.kind = Kind::kShortWrite;
    } else if (kind == "reset") {
      rule.kind = Kind::kReset;
    } else if (kind == "stall") {
      rule.kind = Kind::kStall;
    } else if (kind == "garbage") {
      rule.kind = Kind::kGarbage;
    } else {
      return Status::InvalidArgument(
          "fault rule '" + part +
          "' has unknown kind '" + kind +
          "' (want alloc-fail, cancel, delay, short-write, reset, stall or "
          "garbage)");
    }
    injector->rules_.push_back(std::move(rule));
  }
  return injector;
}

FaultActions FaultInjector::Hit(const char* site) {
  FaultActions actions;
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    uint64_t hit = ++rule.hits;
    if (hit < rule.after) continue;
    if (rule.until != 0 && hit > rule.until) continue;
    switch (rule.kind) {
      case Kind::kAllocFail:
        actions.alloc_fail = true;
        break;
      case Kind::kCancel:
        actions.cancel = true;
        break;
      case Kind::kDelay:
        std::this_thread::sleep_for(kDelaySleep);
        break;
      case Kind::kShortWrite:
        actions.short_write = true;
        break;
      case Kind::kReset:
        actions.reset = true;
        break;
      case Kind::kStall:
        std::this_thread::sleep_for(kStallSleep);
        break;
      case Kind::kGarbage:
        actions.garbage = true;
        break;
    }
  }
  return actions;
}

}  // namespace fastqre
