#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace fastqre {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "Invalid argument";
    case StatusCode::kNotFound: return "Not found";
    case StatusCode::kAlreadyExists: return "Already exists";
    case StatusCode::kOutOfRange: return "Out of range";
    case StatusCode::kNotImplemented: return "Not implemented";
    case StatusCode::kInternal: return "Internal error";
    case StatusCode::kIOError: return "I/O error";
    case StatusCode::kResourceExhausted: return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void DieOnError(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "FASTQRE_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace fastqre
