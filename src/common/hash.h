// Hashing helpers used for tuple-set containment checks throughout the QRE
// pipeline (column cover, CGM discovery, walk coherence, validation).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace fastqre {

/// \brief Combines a hash into a running seed (boost::hash_combine style,
/// with a 64-bit mixer).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (SplitMix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// \brief FNV-1a over raw bytes; deterministic across platforms.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

/// \brief Hash of a sequence of 32-bit ids; used for row tuples of ValueIds.
inline uint64_t HashIdTuple(const uint32_t* ids, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ n;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, ids[i]);
  return h;
}

/// \brief std::hash adapter for vectors of 32-bit ids.
struct IdTupleHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return static_cast<size_t>(HashIdTuple(v.data(), v.size()));
  }
};

}  // namespace fastqre
