// Status: lightweight error propagation without exceptions, in the style of
// Arrow/RocksDB. Functions that can fail return Status (or Result<T>, see
// result.h); success is the common, cheap path.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace fastqre {

/// \brief Machine-readable classification of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kResourceExhausted = 8,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or a (code, message) pair.
///
/// An OK Status stores no heap state; error construction allocates once.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status copyable at pointer cost; errors are rare and
  // immutable once constructed.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define FASTQRE_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::fastqre::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Aborts the process if `expr` is a non-OK Status. For use in examples,
/// benchmarks and tests where an error is a bug.
#define FASTQRE_CHECK_OK(expr)                                       \
  do {                                                               \
    ::fastqre::Status _st = (expr);                                  \
    if (!_st.ok()) ::fastqre::internal::DieOnError(_st, __FILE__, __LINE__); \
  } while (0)

namespace internal {
[[noreturn]] void DieOnError(const Status& st, const char* file, int line);
}  // namespace internal

}  // namespace fastqre
