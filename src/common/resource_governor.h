// Engine-wide memory accounting, cooperative cancellation, and graceful
// degradation (DESIGN.md §11).
//
// Every large allocation on the search path — executor hash indexes, block
// intermediate buffers, walk-cache materializations, mapping-enumerator
// frontier states, lazily-built column patterns — is charged against a
// single ResourceGovernor in estimated bytes. Accounting is always on (so
// QreStats::peak_tracked_bytes is meaningful even without a budget); a
// budget of 0 means unlimited.
//
// When the tracked total crosses the budget, the governor climbs a
// monotone degradation ladder instead of letting the process take a
// std::bad_alloc:
//
//   level 1  Shrink: the pressure hook evicts the walk cache to half its
//            configured budget.
//   level 2  Pipelined-only: new cache materializations are refused
//            (TryCharge returns false; validation falls back to the
//            non-materialized path and existing answers stay identical).
//   level 3  Exhausted: required charges have overflowed the budget even
//            after degrading; the in-flight search aborts cooperatively at
//            the next interrupt poll and returns partial stats with
//            failure_reason "memory budget exceeded".
//
// The ladder never goes back down within an engine's lifetime — retry with a
// fresh FastQre (which re-reads the same options/fault spec, so retried
// answers are byte-identical). Escalation is driven by lock-free CAS; the
// level-1 pressure hook is invoked by the CAS winner only, with no governor
// lock held, so hook implementations may take their own (leaf) mutexes.
//
// Memory-order policy follows common/counters.h: tracked/peak/degradation
// tallies are relaxed (they never guard other data); the ladder level and
// the cancellation flag use release/acquire so a thread observing a level
// also observes the state transitions that justified it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/fault_injection.h"
#include "common/timer.h"

namespace fastqre {

/// \brief Sticky external cancellation flag shared between FastQre::Cancel()
/// (any thread) and the search loops (via ResourceGovernor / RunControl).
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Atomic byte accounting with a degradation ladder and optional
/// deterministic fault injection. One instance per FastQre engine; shared
/// with the Database's lazy caches and the walk cache. All methods are
/// thread-safe; SetPressureHook must be called before concurrent use
/// (engine construction time).
class ResourceGovernor {
 public:
  /// `budget_bytes` of 0 disables the budget (accounting still runs).
  /// `token`, if non-null, is cancelled by injected `cancel` faults.
  explicit ResourceGovernor(uint64_t budget_bytes,
                            std::shared_ptr<CancellationToken> token = nullptr,
                            std::unique_ptr<FaultInjector> injector = nullptr)
      : budget_(budget_bytes),
        token_(std::move(token)),
        injector_(std::move(injector)) {}

  /// Charges an *optional* allocation (cache materializations). Returns
  /// false — and leaves nothing charged — when the site's injected
  /// alloc-fail fires, when materialization is already degraded away, or
  /// when the charge would overflow the budget even after escalating
  /// through shrink (level 1) and pipelined-only (level 2). The caller must
  /// skip or un-cache the allocation on false; it never escalates to
  /// exhaustion.
  bool TryCharge(uint64_t bytes, const char* site);

  /// Charges a *required* allocation (index builds, block buffers already
  /// admitted, frontier states). Never fails; overflowing the budget (or an
  /// injected alloc-fail at the site) escalates the ladder up to exhaustion,
  /// which the search observes at its next interrupt poll.
  void Charge(uint64_t bytes, const char* site);

  /// Returns previously charged bytes. Atomic-only: safe to call while
  /// holding caller mutexes (eviction paths).
  void Release(uint64_t bytes);

  /// Bare fault-injection poll for sites with no allocation to charge
  /// (cgm-discovery, parallel-worker, answer-found). alloc-fail rules are
  /// inert here; cancel and delay apply. No-op without an injector.
  void FaultPoint(const char* site);

  /// Like FaultPoint but additionally reports whether an alloc-fail rule
  /// fired, for sites whose allocation is owned by the caller — a morsel
  /// worker maps it onto a refused block-buffer quantum (candidate-local
  /// dismissal, never a whole-search abort). Always false without an
  /// injector; nothing is charged or escalated here.
  bool FaultPointAllocFails(const char* site) { return Inject(site); }

  /// Degradation ladder reads.
  bool materialization_allowed() const {
    return level_.load(std::memory_order_acquire) < 2;
  }
  bool memory_exhausted() const {
    return level_.load(std::memory_order_acquire) >= 3;
  }
  int degradation_level() const {
    return level_.load(std::memory_order_acquire);
  }

  bool cancelled() const { return token_ != nullptr && token_->cancelled(); }

  uint64_t budget_bytes() const { return budget_; }
  uint64_t tracked_bytes() const {
    return tracked_.load(std::memory_order_relaxed);
  }
  uint64_t peak_tracked_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  uint64_t degradation_events() const {
    return degradation_events_.load(std::memory_order_relaxed);
  }

  /// Installs the level-1 shrink action (walk-cache eviction). Invoked at
  /// most once per engine lifetime, by the thread that wins the 0 -> 1
  /// escalation, with no governor lock held. Not thread-safe: call before
  /// the engine starts reversing.
  void SetPressureHook(std::function<void()> hook) {
    pressure_hook_ = std::move(hook);
  }

 private:
  /// Runs fault injection for `site` (null-check only when disabled) and
  /// reports whether an alloc-fail rule fired.
  bool Inject(const char* site);
  /// Climbs the ladder one level at a time up to `target`, re-testing
  /// pressure between levels (a successful shrink stops the climb).
  void EscalateUpTo(int target);
  /// Jumps straight to level 3 (injected failure of a required charge).
  void ForceExhaust();
  void UpdatePeak(uint64_t now);

  const uint64_t budget_;
  std::shared_ptr<CancellationToken> token_;
  std::unique_ptr<FaultInjector> injector_;
  std::function<void()> pressure_hook_;

  std::atomic<uint64_t> tracked_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> degradation_events_{0};
  std::atomic<int> level_{0};
};

/// \brief Carves per-job byte slices out of one global service budget
/// (DESIGN.md §15). The admission controller reserves a slice before a job
/// is admitted and the job's own ResourceGovernor is constructed with that
/// slice as its budget, so the sum of every in-flight job's budget never
/// exceeds the global pool — the multi-tenant counterpart of the per-engine
/// governor. Reservation is a CAS loop on one atomic; a `total_bytes` of 0
/// disables the pool (every TryReserve succeeds, accounting still runs).
///
/// Memory-order note (policy in common/counters.h): reserved/peak are pure
/// accounting — no data is published through them (the job's governor does
/// its own charging) — so relaxed is correct and required here.
class BudgetPool {
 public:
  explicit BudgetPool(uint64_t total_bytes) : total_(total_bytes) {}

  /// Reserves `bytes` from the pool; false (nothing reserved) when the
  /// reservation would overflow the global budget.
  bool TryReserve(uint64_t bytes) {
    uint64_t cur = reserved_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t next = cur + bytes;
      if (total_ != 0 && (next > total_ || next < cur)) return false;
      if (reserved_.compare_exchange_weak(cur, next,
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
        UpdatePeak(next);
        return true;
      }
    }
  }

  /// Returns a previous reservation to the pool.
  void Release(uint64_t bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t total_bytes() const { return total_; }
  uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t peak_reserved_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void UpdatePeak(uint64_t now) {
    uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now && !peak_.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed,
                             std::memory_order_relaxed)) {
    }
  }

  const uint64_t total_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> peak_{0};
};

/// \brief Why a search run stopped early. Recorded once (first cause wins)
/// so concurrent pollers agree on the reported failure_reason.
enum class StopCause { kNone, kDeadline, kCancelled, kMemory };

/// \brief Per-ReverseAll stop control: folds the wall-clock deadline, the
/// engine's CancellationToken, and governor memory exhaustion into the one
/// `bool()` interrupt callback already threaded through the search
/// (kInterruptPollMask sites). Stack-local to a ReverseAll call; pointers
/// must outlive it.
class RunControl {
 public:
  RunControl(double time_budget_seconds, const CancellationToken* token,
             const ResourceGovernor* governor)
      : deadline_seconds_(time_budget_seconds),
        token_(token),
        governor_(governor) {}

  /// The interrupt predicate: true once any stop cause has fired. Records
  /// the first cause observed; sticky thereafter.
  bool ShouldStop() {
    if (cause_.load(std::memory_order_acquire) != StopCause::kNone) {
      return true;
    }
    if (token_ != nullptr && token_->cancelled()) {
      RecordCause(StopCause::kCancelled);
      return true;
    }
    if (governor_ != nullptr && governor_->memory_exhausted()) {
      RecordCause(StopCause::kMemory);
      return true;
    }
    if (deadline_seconds_ > 0 &&
        timer_.ElapsedSeconds() > deadline_seconds_) {
      RecordCause(StopCause::kDeadline);
      return true;
    }
    return false;
  }

  StopCause cause() const { return cause_.load(std::memory_order_acquire); }

  /// Human-readable failure_reason for the recorded cause ("" if none).
  /// The deadline string is load-bearing: tests and the CLI match
  /// "time budget exceeded" exactly.
  const char* reason() const {
    switch (cause()) {
      case StopCause::kDeadline:
        return "time budget exceeded";
      case StopCause::kCancelled:
        return "cancelled";
      case StopCause::kMemory:
        return "memory budget exceeded";
      case StopCause::kNone:
        return "";
    }
    return "";
  }

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  void RecordCause(StopCause cause) {
    StopCause expected = StopCause::kNone;
    (void)cause_.compare_exchange_strong(expected, cause,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  Timer timer_;
  const double deadline_seconds_;
  const CancellationToken* token_;
  const ResourceGovernor* governor_;
  std::atomic<StopCause> cause_{StopCause::kNone};
};

}  // namespace fastqre
