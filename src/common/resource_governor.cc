#include "common/resource_governor.h"

namespace fastqre {

bool ResourceGovernor::Inject(const char* site) {
  if (injector_ == nullptr) return false;  // zero-overhead when disabled
  FaultActions actions = injector_->Hit(site);
  if (actions.cancel && token_ != nullptr) token_->Cancel();
  return actions.alloc_fail;
}

void ResourceGovernor::UpdatePeak(uint64_t now) {
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

void ResourceGovernor::EscalateUpTo(int target) {
  int level = level_.load(std::memory_order_acquire);
  while (level < target) {
    // Re-test between rungs: a lower rung (shrink) may have relieved the
    // pressure that started the climb.
    if (budget_ != 0 &&
        tracked_.load(std::memory_order_relaxed) <= budget_) {
      return;
    }
    if (level_.compare_exchange_strong(level, level + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      degradation_events_.fetch_add(1, std::memory_order_relaxed);
      ++level;
      // Only the CAS winner runs the level-1 shrink action, with no
      // governor lock held (the hook takes the walk cache's own mutex).
      if (level == 1 && pressure_hook_) pressure_hook_();
    }
  }
}

void ResourceGovernor::ForceExhaust() {
  int level = level_.load(std::memory_order_acquire);
  while (level < 3) {
    if (level_.compare_exchange_strong(level, 3, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      degradation_events_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

bool ResourceGovernor::TryCharge(uint64_t bytes, const char* site) {
  if (Inject(site)) return false;
  if (!materialization_allowed()) return false;
  uint64_t now = tracked_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(now);
  if (budget_ == 0 || now <= budget_) return true;
  // Over budget: shrink (level 1), and if that is not enough stop further
  // materialization (level 2). EscalateUpTo re-tests after the shrink, so a
  // successful eviction leaves the ladder at 1 and this charge admitted.
  EscalateUpTo(2);
  if (tracked_.load(std::memory_order_relaxed) <= budget_) return true;
  tracked_.fetch_sub(bytes, std::memory_order_relaxed);
  return false;
}

void ResourceGovernor::Charge(uint64_t bytes, const char* site) {
  if (Inject(site)) {
    // Simulated failure of a required allocation: the search must surface
    // memory exhaustion, not crash, so jump straight to level 3.
    ForceExhaust();
    return;
  }
  uint64_t now = tracked_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(now);
  if (budget_ != 0 && now > budget_) EscalateUpTo(3);
}

void ResourceGovernor::Release(uint64_t bytes) {
  tracked_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ResourceGovernor::FaultPoint(const char* site) { (void)Inject(site); }

}  // namespace fastqre
