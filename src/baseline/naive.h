// NaiveQre: the exhaustive exact-QRE baseline (Section 3 "Naive Solution"),
// standing in for the methodical state-of-the-art solver the paper compares
// against (its reference [38]): compute the column cover, enumerate all
// cover-consistent column mappings with unrestricted instance grouping,
// enumerate walk groups bottom-up by description complexity Q_dc only, and
// validate each candidate with a full block evaluation — no CGMs, no
// coherence filtering, no probing, no progressive early exit, no feedback.
//
// It shares FastQRE's substrate (executor, walks, subset enumeration), so
// E1's speedups measure the paper's algorithmic contributions, not
// incidental implementation differences.
#pragma once

#include "common/result.h"
#include "qre/fastqre.h"
#include "qre/options.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Exhaustive baseline QRE solver.
class NaiveQre {
 public:
  /// \param time_budget_seconds 0 = unlimited. The baseline can take a very
  /// long time on complex queries (that is the point of E1); benchmarks run
  /// it with a budget and report ">budget" on expiry.
  explicit NaiveQre(const Database* db, double time_budget_seconds = 0.0)
      : engine_(db, BaselineOptions(time_budget_seconds)) {}

  /// The option set that turns the FastQRE machinery into the naive
  /// baseline. Walk-discovery parameters are left identical for fairness.
  static QreOptions BaselineOptions(double time_budget_seconds) {
    QreOptions o;
    o.use_cgm_ranking = false;
    o.use_indirect_coherence = false;
    o.use_two_queue_composer = false;
    o.use_progressive_validation = false;
    o.use_probing = false;
    o.use_feedback_pruning = false;
    o.use_pattern_pruning = false;
    o.time_budget_seconds = time_budget_seconds;
    return o;
  }

  Result<QreAnswer> Reverse(const Table& rout) const {
    return engine_.Reverse(rout);
  }

  const QreOptions& options() const { return engine_.options(); }

 private:
  FastQre engine_;
};

}  // namespace fastqre
