#include "engine/sql_parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "common/strings.h"

namespace fastqre {

namespace {

enum class TokenKind {
  kIdentifier,  // table / column / alias names (also bare keywords)
  kNumber,      // integer or decimal literal
  kString,      // 'quoted literal'
  kComma,
  kDot,
  kEquals,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier name / literal payload
  size_t pos;        // byte offset for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = input_.size();
    while (i < n) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == ',') {
        out.push_back({TokenKind::kComma, ",", i++});
      } else if (c == '.') {
        out.push_back({TokenKind::kDot, ".", i++});
      } else if (c == '=') {
        out.push_back({TokenKind::kEquals, "=", i++});
      } else if (c == '\'') {
        size_t start = i++;
        std::string payload;
        bool closed = false;
        while (i < n) {
          if (input_[i] == '\'') {
            if (i + 1 < n && input_[i + 1] == '\'') {  // '' escape
              payload += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            payload += input_[i++];
          }
        }
        if (!closed) {
          return Status::InvalidArgument(StringFormat(
              "unterminated string literal at position %zu", start));
        }
        out.push_back({TokenKind::kString, std::move(payload), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+') {
        size_t start = i;
        ++i;
        while (i < n && (std::isdigit(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '.' || input_[i] == 'e' ||
                         input_[i] == 'E' ||
                         ((input_[i] == '-' || input_[i] == '+') &&
                          (input_[i - 1] == 'e' || input_[i - 1] == 'E')))) {
          ++i;
        }
        out.push_back({TokenKind::kNumber, input_.substr(start, i - start), start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                         input_[i] == '_')) {
          ++i;
        }
        out.push_back(
            {TokenKind::kIdentifier, input_.substr(start, i - start), start});
      } else {
        return Status::InvalidArgument(
            StringFormat("unexpected character '%c' at position %zu", c, i));
      }
    }
    out.push_back({TokenKind::kEnd, "", n});
    return out;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  Parser(const Database& db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  Result<PJQuery> Parse() {
    FASTQRE_RETURN_NOT_OK(ExpectKeyword("select"));
    // SELECT list is resolved after FROM (aliases are declared there), so
    // buffer the (alias, column) pairs.
    std::vector<std::pair<Token, Token>> select_list;
    while (true) {
      FASTQRE_ASSIGN_OR_RETURN(auto ref, ParseColumnRefTokens());
      select_list.push_back(ref);
      if (!Accept(TokenKind::kComma)) break;
    }

    FASTQRE_RETURN_NOT_OK(ExpectKeyword("from"));
    while (true) {
      FASTQRE_ASSIGN_OR_RETURN(Token table, Expect(TokenKind::kIdentifier));
      auto table_id = db_.FindTable(table.text);
      if (!table_id.ok()) {
        return Status::NotFound(StringFormat("unknown table '%s' at position %zu",
                                             table.text.c_str(), table.pos));
      }
      std::string alias = table.text;
      if (Peek().kind == TokenKind::kIdentifier && !PeekIsKeyword("where") &&
          !PeekIsKeyword("and")) {
        alias = Next().text;
      }
      if (aliases_.count(alias) > 0) {
        return Status::InvalidArgument(
            StringFormat("duplicate alias '%s'", alias.c_str()));
      }
      aliases_[alias] = query_.AddInstance(*table_id);
      if (!Accept(TokenKind::kComma)) break;
    }

    if (PeekIsKeyword("where")) {
      Next();
      while (true) {
        FASTQRE_RETURN_NOT_OK(ParseCondition());
        if (!PeekIsKeyword("and")) break;
        Next();
      }
    }
    FASTQRE_RETURN_NOT_OK(Expect(TokenKind::kEnd).status());

    for (const auto& [alias_tok, col_tok] : select_list) {
      FASTQRE_ASSIGN_OR_RETURN(auto rc, Resolve(alias_tok, col_tok));
      query_.AddProjection(rc.first, rc.second);
    }
    return query_;
  }

 private:
  const Token& Peek() const { return tokens_[cursor_]; }
  Token Next() { return tokens_[cursor_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++cursor_;
    return true;
  }
  bool PeekIsKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && ToLower(Peek().text) == kw;
  }
  Result<Token> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(StringFormat(
          "unexpected token '%s' at position %zu", Peek().text.c_str(),
          Peek().pos));
    }
    return Next();
  }
  Status ExpectKeyword(const char* kw) {
    if (!PeekIsKeyword(kw)) {
      return Status::InvalidArgument(
          StringFormat("expected %s at position %zu (found '%s')", kw,
                       Peek().pos, Peek().text.c_str()));
    }
    Next();
    return Status::OK();
  }

  Result<std::pair<Token, Token>> ParseColumnRefTokens() {
    FASTQRE_ASSIGN_OR_RETURN(Token alias, Expect(TokenKind::kIdentifier));
    FASTQRE_RETURN_NOT_OK(Expect(TokenKind::kDot).status());
    FASTQRE_ASSIGN_OR_RETURN(Token col, Expect(TokenKind::kIdentifier));
    return std::make_pair(alias, col);
  }

  Result<std::pair<InstanceId, ColumnId>> Resolve(const Token& alias,
                                                  const Token& col) {
    auto it = aliases_.find(alias.text);
    if (it == aliases_.end()) {
      return Status::NotFound(StringFormat("unknown alias '%s' at position %zu",
                                           alias.text.c_str(), alias.pos));
    }
    InstanceId inst = it->second;
    auto column = db_.table(query_.instance_table(inst)).FindColumn(col.text);
    if (!column.ok()) {
      return Status::NotFound(StringFormat(
          "table '%s' (alias '%s') has no column '%s'",
          db_.table(query_.instance_table(inst)).name().c_str(),
          alias.text.c_str(), col.text.c_str()));
    }
    return std::make_pair(inst, *column);
  }

  Status ParseCondition() {
    FASTQRE_ASSIGN_OR_RETURN(auto left_tokens, ParseColumnRefTokens());
    FASTQRE_ASSIGN_OR_RETURN(auto left, Resolve(left_tokens.first,
                                                left_tokens.second));
    FASTQRE_RETURN_NOT_OK(Expect(TokenKind::kEquals).status());

    const Token& rhs = Peek();
    if (rhs.kind == TokenKind::kIdentifier) {
      FASTQRE_ASSIGN_OR_RETURN(auto right_tokens, ParseColumnRefTokens());
      FASTQRE_ASSIGN_OR_RETURN(auto right, Resolve(right_tokens.first,
                                                   right_tokens.second));
      query_.AddJoin(left.first, left.second, right.first, right.second);
      return Status::OK();
    }
    if (rhs.kind == TokenKind::kNumber) {
      Token lit = Next();
      int64_t i64;
      double d;
      Value v;
      if (ParseInt64(lit.text, &i64)) {
        v = Value(i64);
      } else if (ParseDouble(lit.text, &d)) {
        v = Value(d);
      } else {
        return Status::InvalidArgument(StringFormat(
            "bad numeric literal '%s' at position %zu", lit.text.c_str(),
            lit.pos));
      }
      // Match the column's declared type so the selection can ever hit
      // (int64 5 and double 5.0 are distinct dictionary values).
      ValueType col_type =
          db_.table(query_.instance_table(left.first)).column(left.second).type();
      if (col_type == ValueType::kDouble && v.type() == ValueType::kInt64) {
        v = Value(static_cast<double>(v.AsInt64()));
      }
      query_.AddSelection(left.first, left.second,
                          db_.dictionary()->Intern(v));
      return Status::OK();
    }
    if (rhs.kind == TokenKind::kString) {
      Token lit = Next();
      query_.AddSelection(left.first, left.second,
                          db_.dictionary()->Intern(Value(lit.text)));
      return Status::OK();
    }
    return Status::InvalidArgument(StringFormat(
        "expected column reference or literal at position %zu", rhs.pos));
  }

  const Database& db_;
  std::vector<Token> tokens_;
  size_t cursor_ = 0;
  PJQuery query_;
  std::map<std::string, InstanceId> aliases_;
};

}  // namespace

Result<PJQuery> ParsePJQuery(const Database& db, const std::string& sql) {
  Lexer lexer(sql);
  FASTQRE_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(db, std::move(tokens));
  return parser.Parse();
}

}  // namespace fastqre
