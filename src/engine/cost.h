// CostEstimator: the Q_ex cost function of Section 4.4.2.
//
// The paper obtains a predicted execution time from the DBMS query
// optimizer. Here a textbook cardinality model plays that role: cardinality
// is propagated along the same plan order the executor would use, with
// fk-fanout estimated from table sizes and distinct counts. The model is
// deliberately *imperfect* — the paper's point is that Q_ex alone mis-ranks
// queries and must be blended with Q_dc into Q_alpha.
#pragma once

#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Cardinality-based execution-cost model for PJ queries.
class CostEstimator {
 public:
  /// `sip_aware` mirrors ExecPolicy::use_sip in the model: when the
  /// executors push sideways presence filters into joins (DESIGN.md §13),
  /// each placed instance is additionally discounted by the semi-join
  /// selectivity of its joins into later-placed instances — estimated from
  /// distinct counts, so the model still executes nothing and builds
  /// nothing. With SIP off the model is unchanged.
  explicit CostEstimator(const Database* db, bool sip_aware = false)
      : db_(db), sip_aware_(sip_aware) {}

  /// Estimated number of rows touched by a pipelined evaluation of `query`
  /// (sum of estimated intermediate cardinalities). Deterministic; does not
  /// execute anything or build indexes.
  double EstimateCost(const PJQuery& query) const;

  /// log10(1 + EstimateCost), the scale-compressed form used when blending
  /// with Q_dc into Q_alpha = alpha*Q_dc + (1-alpha)*NormalizedCost. (The
  /// paper leaves the combining scale open; footnote 4 allows any blending
  /// "as long as it balances" the two costs, and Q_dc and raw row counts
  /// live on wildly different scales.)
  double NormalizedCost(const PJQuery& query) const;

 private:
  const Database* db_;
  const bool sip_aware_;
};

}  // namespace fastqre
