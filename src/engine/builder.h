// QueryBuilder: name-based convenience layer for constructing PJQuery
// objects in examples, tests and workload definitions.
#pragma once

#include <string>

#include "common/result.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Builds PJQuery objects by table/column *name*, accumulating the
/// first error (monadic style) so call sites stay linear:
/// \code
///   QueryBuilder b(&db);
///   auto s  = b.Instance("supplier");
///   auto ps = b.Instance("partsupp");
///   b.Join(s, "s_suppkey", ps, "ps_suppkey");
///   b.Project(s, "s_name");
///   FASTQRE_ASSIGN_OR_RETURN(PJQuery q, b.Build());
/// \endcode
class QueryBuilder {
 public:
  explicit QueryBuilder(const Database* db) : db_(db) {}

  /// Adds an instance of the named table. On unknown name, records the error
  /// and returns a dummy id (surfaced by Build()).
  InstanceId Instance(const std::string& table_name);

  /// Adds a join a.col_a = b.col_b.
  void Join(InstanceId a, const std::string& col_a, InstanceId b,
            const std::string& col_b);

  /// Appends a projection column.
  void Project(InstanceId instance, const std::string& column);

  /// Adds an equality selection instance.column = value.
  void Select(InstanceId instance, const std::string& column, const Value& value);

  /// Returns the built query, or the first name-resolution error.
  Result<PJQuery> Build();

 private:
  ColumnId ResolveColumn(InstanceId instance, const std::string& column);

  const Database* db_;
  PJQuery query_;
  Status first_error_ = Status::OK();
};

}  // namespace fastqre
