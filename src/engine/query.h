// PJQuery: a project-join SQL query represented by its query graph G_Q
// (Section 3 of the paper): nodes are table *instances*, edges are equi-join
// conditions over schema-graph edges, plus an ordered projection list.
//
// Optional equality selections support the probing-query mechanism of the
// Query Validation module (they are not part of the PJ class itself; the PJ
// WHERE clause holds only join conditions, per the paper's footnote 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Index of a table-instance node within a PJQuery's query graph.
using InstanceId = uint32_t;

/// \brief One equi-join condition: instance a's col_a = instance b's col_b.
struct QueryJoin {
  InstanceId a;
  ColumnId col_a;
  InstanceId b;
  ColumnId col_b;
};

/// \brief A reference to one column of one table instance.
struct InstanceColumn {
  InstanceId instance;
  ColumnId column;

  bool operator==(const InstanceColumn& o) const {
    return instance == o.instance && column == o.column;
  }
};

/// \brief Equality selection used by probing queries: instance.col = value.
struct Selection {
  InstanceId instance;
  ColumnId column;
  ValueId value;
};

/// \brief A project-join query over a Database.
class PJQuery {
 public:
  /// Adds an instance node of table `t`; returns the new InstanceId.
  InstanceId AddInstance(TableId t) {
    instances_.push_back(t);
    return static_cast<InstanceId>(instances_.size() - 1);
  }

  /// Adds a join edge between two instances (may be the same instance, in
  /// which case it is a per-row filter col_a = col_b).
  void AddJoin(InstanceId a, ColumnId col_a, InstanceId b, ColumnId col_b) {
    joins_.push_back(QueryJoin{a, col_a, b, col_b});
  }

  /// Appends a projection column (SELECT-clause order is append order).
  void AddProjection(InstanceId instance, ColumnId column) {
    projections_.push_back(InstanceColumn{instance, column});
  }

  /// Adds an equality selection (probing only).
  void AddSelection(InstanceId instance, ColumnId column, ValueId value) {
    selections_.push_back(Selection{instance, column, value});
  }
  void ClearSelections() { selections_.clear(); }

  size_t num_instances() const { return instances_.size(); }
  TableId instance_table(InstanceId i) const { return instances_[i]; }
  const std::vector<TableId>& instances() const { return instances_; }
  const std::vector<QueryJoin>& joins() const { return joins_; }
  const std::vector<InstanceColumn>& projections() const { return projections_; }
  const std::vector<Selection>& selections() const { return selections_; }

  /// True if the query graph is connected (a disconnected graph means a
  /// cross product; such candidates are never validated).
  bool IsConnected() const;

  /// Query description complexity Q_dc = |V_Q| + |E_Q| (Section 3 lists this
  /// among the standard choices).
  double DescriptionComplexity() const {
    return static_cast<double>(instances_.size() + joins_.size());
  }

  /// Renders the query as SQL text against `db` (aliases R1, R2, ...).
  std::string ToSql(const Database& db) const;

 private:
  std::vector<TableId> instances_;
  std::vector<QueryJoin> joins_;
  std::vector<InstanceColumn> projections_;
  std::vector<Selection> selections_;
};

}  // namespace fastqre
