// Tuple-set utilities backing the paper's pi / set-containment machinery.
//
// With dictionary encoding, pi_C(R) is a set of ValueId tuples; direct
// column coherence, indirect (walk) coherence, and final validation all
// reduce to operations over these sets.
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace fastqre {

/// \brief A set of rows, each a tuple of ValueIds.
using TupleSet = std::unordered_set<std::vector<ValueId>, IdTupleHash>;

// Every routine below polls `interrupt` (may be empty) once per
// kInterruptPollMask+1 rows/tuples so a deadline or Cancel() lands with
// bounded latency even inside a large projection or containment check. When
// the interrupt fires mid-scan the routine returns early — a partial set or
// a conservative `false` — so callers that pass an interrupt must re-check
// their stop predicate before trusting the result.

/// \brief Distinct tuples of `table` projected onto `cols` (pi_cols(table)).
TupleSet ProjectToTupleSet(const Table& table, const std::vector<ColumnId>& cols,
                           const std::function<bool()>& interrupt = {});

/// \brief Distinct full rows of `table`.
TupleSet TableToTupleSet(const Table& table,
                         const std::function<bool()>& interrupt = {});

/// \brief True if every tuple of `sub` is in `super`.
bool IsSubsetOf(const TupleSet& sub, const TupleSet& super,
                const std::function<bool()>& interrupt = {});

/// \brief True if the projection of `table` onto `cols` is a subset of
/// `super`, short-circuiting on the first missing tuple.
bool ProjectionSubsetOf(const Table& table, const std::vector<ColumnId>& cols,
                        const TupleSet& super,
                        const std::function<bool()>& interrupt = {});

}  // namespace fastqre
