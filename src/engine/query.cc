#include "engine/query.h"

#include <functional>
#include <numeric>

#include "common/strings.h"

namespace fastqre {

bool PJQuery::IsConnected() const {
  if (instances_.empty()) return false;
  std::vector<InstanceId> parent(instances_.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<InstanceId(InstanceId)> find = [&](InstanceId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& j : joins_) {
    parent[find(j.a)] = find(j.b);
  }
  InstanceId root = find(0);
  for (InstanceId i = 1; i < instances_.size(); ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

std::string PJQuery::ToSql(const Database& db) const {
  auto alias = [&](InstanceId i) {
    // Count earlier instances of the same table to mimic the paper's S, S2
    // style (first instance keeps the bare suffixless alias index 1).
    int ordinal = 1;
    for (InstanceId k = 0; k < i; ++k) {
      if (instances_[k] == instances_[i]) ++ordinal;
    }
    std::string base = db.table(instances_[i]).name();
    return ordinal == 1 ? base + "1" : base + std::to_string(ordinal);
  };

  std::string sql = "SELECT ";
  if (projections_.empty()) {
    sql += "*";
  } else {
    std::vector<std::string> cols;
    for (const auto& p : projections_) {
      cols.push_back(alias(p.instance) + "." +
                     db.table(instances_[p.instance]).column(p.column).name());
    }
    sql += JoinStrings(cols, ", ");
  }
  sql += " FROM ";
  std::vector<std::string> froms;
  for (InstanceId i = 0; i < instances_.size(); ++i) {
    froms.push_back(db.table(instances_[i]).name() + " " + alias(i));
  }
  sql += JoinStrings(froms, ", ");
  std::vector<std::string> conds;
  for (const auto& j : joins_) {
    conds.push_back(alias(j.a) + "." + db.table(instances_[j.a]).column(j.col_a).name() +
                    "=" + alias(j.b) + "." +
                    db.table(instances_[j.b]).column(j.col_b).name());
  }
  for (const auto& s : selections_) {
    conds.push_back(alias(s.instance) + "." +
                    db.table(instances_[s.instance]).column(s.column).name() + "=" +
                    db.dictionary()->Get(s.value).ToSqlLiteral());
  }
  if (!conds.empty()) {
    sql += " WHERE " + JoinStrings(conds, " AND ");
  }
  return sql;
}

}  // namespace fastqre
