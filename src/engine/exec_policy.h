// Execution policy for one candidate: vectorized (batched) probe kernels
// and morsel-driven intra-candidate parallelism (DESIGN.md §12).
//
// The policy travels from QreOptions through the validator into the block
// executor and the pipelined cursor. Every combination of its knobs yields
// byte-identical results — morsels are merged in morsel-index order and the
// batched kernels preserve the scalar kernels' row visit order — so the
// policy only ever changes how fast a candidate executes, never what the
// search answers.
#pragma once

#include <cstddef>
#include <memory>

namespace fastqre {

class ResourceGovernor;
class SubplanCache;
class ThreadPool;

/// \brief Default driving-relation tuples per morsel: large enough that the
/// per-morsel scheduling and interrupt-poll cost is amortized away, small
/// enough that a deadline or Cancel() lands within a few thousand rows.
inline constexpr size_t kDefaultMorselSize = 2048;

/// \brief How a candidate's joins execute.
struct ExecPolicy {
  /// Vectorized column probes: HashIndex::LookupBatch over dense key
  /// vectors, columnar candidate prefilters, and rebind-amortized point
  /// probes. Off = the legacy tuple-at-a-time kernels (ablation axis, E14).
  bool batch_probes = true;

  /// Total workers (including the calling thread) executing one candidate's
  /// morsels; <= 1 keeps execution on the calling thread.
  int intra_threads = 1;

  /// Driving-relation tuples per morsel — also the block executor's
  /// interrupt-poll granularity.
  size_t morsel_size = kDefaultMorselSize;

  /// Smallest driving relation worth dispatching to the pool; below it the
  /// scheduling overhead exceeds the win and morsels stay on the caller.
  size_t intra_threshold = 4096;

  /// Shared worker pool for morsel dispatch; not owned, may be null (serial).
  ThreadPool* pool = nullptr;

  /// Sideways information passing (DESIGN.md §13): push per-(table, column)
  /// presence bitmaps of future join partners into scan and probe steps, so
  /// rows provably absent from every later endpoint never enter an
  /// intermediate relation. Semantics-preserving — surviving rows keep their
  /// visit order, so results stay byte-identical. Off = ablation axis (E15).
  bool use_sip = true;

  /// Cross-candidate memo of block-execution join prefixes (DESIGN.md §13);
  /// not owned, may be null (no memoization — the --subplan-cache-mb 0
  /// ablation cell). Hits replay the stored pre-filter enumeration count, so
  /// every verdict is cache-state invariant.
  SubplanCache* subplan_cache = nullptr;

  /// The governor charged (and polled for injected faults) for
  /// candidate-local execution state — the driving engine's own accounting
  /// identity. The Database's attached governor is NOT used for this: that
  /// attachment is last-attach-wins across engines sharing the database, so
  /// a concurrently constructed engine (possibly with a tiny budget) would
  /// have its ladder refuse another engine's charges and silently dismiss
  /// its candidates. Null falls back to the database attachment, for
  /// standalone executor use outside an engine.
  std::shared_ptr<ResourceGovernor> governor;

  /// Morsels actually go to the pool only when all three gates agree.
  bool WantsParallel(size_t driving_rows) const {
    return intra_threads > 1 && pool != nullptr &&
           driving_rows >= intra_threshold;
  }

  /// Morsel size clamped away from 0 (a 0 would loop forever).
  size_t MorselSize() const { return morsel_size == 0 ? 1 : morsel_size; }
};

}  // namespace fastqre
