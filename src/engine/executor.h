// Pipelined PJ-query execution with a get-next interface.
//
// This implements the "Progressive Query Evaluation" substrate of Section
// 4.1/4.5: instead of materializing Q(D) as a block, QueryCursor::Next()
// yields one projected result row at a time (backtracking index-nested-loop
// over a connected traversal of the query graph), so the validator can stop
// at the first tuple contradicting R_out.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/interrupt.h"
#include "common/result.h"
#include "engine/exec_policy.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

// kInterruptPollMask historically lived here; it moved to common/interrupt.h
// when the storage layer's index builds became interruptible (storage must
// not depend on engine). The include above keeps every existing user.

/// \brief Reachability map of a materialized walk chain: left-endpoint join
/// value -> sorted distinct right-endpoint join values reachable across the
/// walk's intermediate tables (see qre/walk_cache.h).
using ReachMap = std::unordered_map<ValueId, std::vector<ValueId>>;

/// \brief A walk-substitution join: instances `a` and `b` are connected not
/// by physical intermediate instances but by a precomputed reachability
/// relation — row of a joins row of b iff b's col_b value is in
/// a_to_b[a's col_a value]. Both orientations are provided so the planner
/// can drive whichever endpoint is placed later. The maps must outlive the
/// cursor (the walk cache pins them for the candidate's lifetime).
struct VirtualJoin {
  InstanceId a;
  ColumnId col_a;
  InstanceId b;
  ColumnId col_b;
  const ReachMap* a_to_b;
  const ReachMap* b_to_a;
  // Key-domain bitmaps (sideways information passing, DESIGN.md §13): bit v
  // set iff v is a key of the corresponding map — a_domain for a_to_b,
  // b_domain for b_to_a. May be null (no SIP for this join). The planner
  // pushes the bound-side domain into the *earlier* endpoint's step so rows
  // that reach nothing are skipped before any deeper binding is attempted.
  const BitmapFilter* a_domain = nullptr;
  const BitmapFilter* b_domain = nullptr;
};

/// \brief Streaming evaluator of a connected PJQuery.
///
/// The plan orders instances greedily, most-selective-first (instances with
/// selections, then most incoming joins, then smallest table), probes a hash
/// index on each subsequent instance's incoming join + selection columns,
/// and applies same-instance joins as row filters.
class QueryCursor {
  // Constructor gate: only Create() can name PrivateTag, yet the constructor
  // stays public so std::make_unique works (no naked `new`; see
  // tools/lint_invariants.py rule naked-new).
  struct PrivateTag {
    explicit PrivateTag() = default;
  };

 public:
  explicit QueryCursor(PrivateTag) {}

  /// Builds the execution plan (constructing any missing indexes through the
  /// database's index cache). Fails if the query graph is empty or
  /// disconnected. `interrupt` (may be empty) is polled every few thousand
  /// examined rows; when it returns true, Next() stops and interrupted()
  /// becomes true — a single Next() call over a pathological join space can
  /// otherwise run unboundedly.
  /// `virtual_joins` substitutes materialized walks for join paths: each
  /// entry connects two instances of `query` through a precomputed
  /// reachability relation instead of physical intermediates; connectivity
  /// is checked over physical and virtual joins combined. A virtual join
  /// whose later-planned endpoint has no physical index key drives that
  /// step's candidate rows from the cached endpoint set (one index probe
  /// per reachable value); otherwise it is applied as a row filter.
  /// `policy` selects the probe kernels: with batch_probes on, reach-driven
  /// candidate lists are built with one HashIndex::LookupBatch over the
  /// cached value span instead of per-value probes. Result streams are
  /// byte-identical either way.
  static Result<std::unique_ptr<QueryCursor>> Create(
      const Database& db, const PJQuery& query,
      std::function<bool()> interrupt = {},
      const std::vector<VirtualJoin>& virtual_joins = {},
      const ExecPolicy& policy = {});

  /// Produces the next *raw* result row (one ValueId per projection, in
  /// projection order). Returns false at end-of-results. Rows are NOT
  /// deduplicated; callers wanting set semantics dedupe as they stream.
  bool Next(std::vector<ValueId>* row);

  /// Re-binds the constants of the *last* `n` selections added to the query
  /// this cursor was created from (in AddSelection order) and resets
  /// iteration, so one planned cursor serves a whole batch of point probes —
  /// the plan/index/alloc work of Create() is paid once per batch instead of
  /// once per probe. rows_examined() keeps accumulating across rebinds;
  /// interrupted() is cleared (the caller decides whether to continue).
  /// Requires n <= the number of selections at Create time.
  void Rebind(const ValueId* values, size_t n);

  /// Number of selection constants Rebind() can replace.
  size_t num_rebindable() const { return sel_slots_.size(); }

  /// Number of candidate rows examined so far (work metric for stats).
  uint64_t rows_examined() const { return rows_examined_; }

  /// Rows skipped by sideways-information-passing filters (subset of
  /// rows_examined(); each passed every local filter but was provably absent
  /// from a later join partner).
  uint64_t sip_rows_skipped() const { return sip_skipped_; }

  /// True if the last Next() returned false because the interrupt callback
  /// fired (result stream is then *incomplete*, not exhausted).
  bool interrupted() const { return interrupted_; }

 private:
  struct KeySource {
    // Probe-key component: value of `column` in the row currently bound at
    // plan position `from_pos`, or the constant `constant` if from_pos < 0.
    int from_pos;
    ColumnId column;
    ValueId constant;
  };
  struct ReachSpec {
    // Virtual-join constraint: this step's `local_col` value must be in
    // map[u], where u is the value of `from_col` in the row bound at the
    // earlier plan position `from_pos`.
    int from_pos;
    ColumnId from_col;
    ColumnId local_col;
    const ReachMap* map;
  };
  struct Step {
    InstanceId instance;
    const Table* table;
    // Index access (null for the scan at position 0 without selections).
    const HashIndex* index = nullptr;
    std::vector<KeySource> key_sources;
    // Same-instance equality filters col_a = col_b.
    std::vector<std::pair<ColumnId, ColumnId>> self_filters;
    // Leftover constant filters col = value.
    std::vector<std::pair<ColumnId, ValueId>> const_filters;
    // Sideways-information-passing filters: a row of this step is skipped
    // when its `first` column's value is provably absent from a later join
    // partner's join column (`second`: that column's presence bitmap, or a
    // virtual join's bound-side key domain). Skip-only-provably-absent: a
    // failing row cannot complete to any full binding, so removing it leaves
    // the surviving result stream byte-identical (DESIGN.md §13).
    std::vector<std::pair<ColumnId, const BitmapFilter*>> sip_filters;
    // Virtual-join row filters (walk substitution).
    std::vector<ReachSpec> reach_filters;
    // When the step has no physical index key, one virtual join drives the
    // candidate list instead: rows = ∪_{v ∈ map[u]} reach_index[local_col=v].
    std::optional<ReachSpec> reach_driver;
    const HashIndex* reach_index = nullptr;
  };

  bool RowPasses(const Step& step, RowId row) const;
  // Prepares the candidate row list for plan position `pos` given the rows
  // bound at earlier positions (may set interrupted_ when a reach-driven
  // candidate build trips the interrupt callback).
  void InitCandidates(size_t pos);

  const Database* db_ = nullptr;
  ExecPolicy policy_;
  std::vector<Step> steps_;
  std::vector<InstanceColumn> projections_;
  // projection -> (plan position, column)
  std::vector<std::pair<size_t, ColumnId>> proj_slots_;
  // selection i -> (plan position, key_sources index) of its constant, in
  // the order selections were added to the query; Rebind() swaps these.
  std::vector<std::pair<size_t, size_t>> sel_slots_;
  // Reusable batch-probe scratch for reach-driven candidate builds.
  BatchMatches batch_buf_;

  // Iteration state.
  std::vector<const std::vector<RowId>*> candidates_;  // null => full scan
  // gov: bounded — per-cursor reach-driven lists, capped by the walk
  // relation's (already charged) endpoint sets; freed with the cursor.
  std::vector<std::vector<RowId>> owned_candidates_;
  std::vector<size_t> cursor_;   // next candidate index (or next RowId if scan)
  std::vector<RowId> bound_;     // currently bound row per position
  // gov: bounded — plan-depth probe-key scratch, O(instances) entries.
  std::vector<std::vector<ValueId>> key_buf_;
  int depth_ = -1;               // deepest position currently bound
  bool started_ = false;
  bool done_ = false;
  bool interrupted_ = false;
  std::function<bool()> interrupt_;
  uint64_t rows_examined_ = 0;
  // Mutable: bumped inside the const row filter (RowPasses), the one place
  // that knows a rejection was SIP's rather than a local predicate's.
  mutable uint64_t sip_skipped_ = 0;
};

/// \brief Materializes the distinct projected rows of `query` into a new
/// table named `name` (column names out0, out1, ... unless `column_names`
/// given). Convenience for tests, examples and workload generation.
Result<Table> ExecuteToTable(const Database& db, const PJQuery& query,
                             const std::string& name,
                             const std::vector<std::string>& column_names = {});

}  // namespace fastqre
