#include "engine/cost.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fastqre {

double CostEstimator::EstimateCost(const PJQuery& query) const {
  const size_t n = query.num_instances();
  if (n == 0) return 0.0;

  // Reconstruct the executor's BFS order from instance 0 (cost estimation
  // never sees selections, so the start preference does not apply).
  std::vector<std::vector<size_t>> adj(n);
  for (size_t ji = 0; ji < query.joins().size(); ++ji) {
    const auto& j = query.joins()[ji];
    if (j.a == j.b) continue;
    adj[j.a].push_back(ji);
    adj[j.b].push_back(ji);
  }
  std::vector<int> pos(n, -1);
  std::vector<InstanceId> order{0};
  pos[0] = 0;
  for (size_t head = 0; head < order.size(); ++head) {
    InstanceId u = order[head];
    for (size_t ji : adj[u]) {
      const auto& j = query.joins()[ji];
      InstanceId v = (j.a == u) ? j.b : j.a;
      if (pos[v] < 0) {
        pos[v] = static_cast<int>(order.size());
        order.push_back(v);
      }
    }
  }
  if (order.size() != n) {
    // Disconnected: model the cross product, which is what execution would
    // cost if it were allowed. This keeps the estimate finite and huge.
    double cost = 1.0;
    for (InstanceId i = 0; i < n; ++i) {
      cost *= std::max<size_t>(1, db_->table(query.instance_table(i)).num_rows());
    }
    return cost;
  }

  // For each later plan position, estimate fanout = rows / distinct(keys);
  // with SIP awareness, also a per-earlier-position semi-join selectivity
  // min(1, distinct(later key) / distinct(earlier key)) — the fraction of
  // earlier rows whose join value the later endpoint's presence bitmap can
  // possibly contain (DESIGN.md §13).
  std::vector<bool> has_key(n, false);
  std::vector<double> key_distinct(n, 1.0);
  std::vector<double> sip_sel(n, 1.0);
  for (const auto& j : query.joins()) {
    if (j.a == j.b) continue;
    int pa = pos[j.a], pb = pos[j.b];
    int later = std::max(pa, pb);
    bool a_is_later = (pa == later);
    TableId t = query.instance_table(a_is_later ? j.a : j.b);
    ColumnId c = a_is_later ? j.col_a : j.col_b;
    const Column& col = db_->table(t).column(c);
    key_distinct[later] *= std::max<size_t>(1, col.NumDistinct());
    has_key[later] = true;
    if (sip_aware_) {
      int earlier = std::min(pa, pb);
      const Column& ecol =
          db_->table(query.instance_table(a_is_later ? j.b : j.a))
              .column(a_is_later ? j.col_b : j.col_a);
      double ed = static_cast<double>(std::max<size_t>(1, ecol.NumDistinct()));
      double ld = static_cast<double>(std::max<size_t>(1, col.NumDistinct()));
      sip_sel[earlier] *= std::min(1.0, ld / ed);
    }
  }

  double card = static_cast<double>(
      std::max<size_t>(1, db_->table(query.instance_table(order[0])).num_rows()));
  card *= sip_sel[0];
  double cost = card;
  for (size_t p = 1; p < n; ++p) {
    double rows = static_cast<double>(
        std::max<size_t>(1, db_->table(query.instance_table(order[p])).num_rows()));
    double distinct = std::min(key_distinct[p], rows);
    double f = has_key[p] ? rows / distinct : rows;
    card *= f * sip_sel[p];
    cost += card;
  }
  return cost;
}

double CostEstimator::NormalizedCost(const PJQuery& query) const {
  return std::log10(1.0 + EstimateCost(query));
}

}  // namespace fastqre
