// Block (materializing) PJ-query evaluation.
//
// The counterpart of the pipelined QueryCursor: evaluates the query
// bottom-up with hash joins, materializing each intermediate relation in
// full — "running it as a single block operation" in the paper's words
// (Section 4.1), i.e. the behaviour of a conventional DBMS executing a
// candidate query without a get-next interface. The naive baseline's
// non-progressive validation uses this path; it is also a differential
// oracle for the pipelined executor in tests, and (with a subplan cache)
// the validator's exact extra-tuple check for convoy candidates.
//
// Execution is morsel-driven (DESIGN.md §12): each join step partitions its
// driving relation into fixed-size morsels, processed either on the calling
// thread or on a shared ThreadPool per the ExecPolicy, with per-morsel
// result buffers merged back in morsel-index order — so the output table is
// byte-identical at any thread count, morsel size, or kernel choice.
//
// Two sideways accelerations ride on the policy (DESIGN.md §13), both
// semantics-preserving:
//   * SIP filters (policy.use_sip): rows whose join value is provably
//     absent from a future join partner's column are skipped before they
//     enter an intermediate relation.
//   * Subplan memoization (policy.subplan_cache): the intermediate after
//     each join prefix is looked up / stored under a canonical prefix
//     signature, so convoy candidates sharing a prefix resume from the
//     deepest cached intermediate instead of rejoining from scratch. Hits
//     replay the stored pre-filter enumeration count, keeping the
//     intermediate-size-cap verdict cache-state invariant.
#pragma once

#include <functional>

#include "common/result.h"
#include "engine/compare.h"
#include "engine/exec_policy.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Per-run observability of one ExecuteBlock call. Valid when the
/// call returned OK or stopped at a subset-guard violation; error paths may
/// leave it partially filled.
struct BlockRunStats {
  /// Pre-filter match rows enumerated across all join steps, including the
  /// replayed counts of memoized prefixes (so the value is identical whether
  /// a prefix was recomputed or served from cache).
  uint64_t rows_enumerated = 0;
  /// Rows skipped by SIP filters (each had a join value provably absent
  /// from some future join partner).
  uint64_t sip_rows_skipped = 0;
  /// Join prefixes served from the subplan cache (0 or 1 per call: only the
  /// deepest cached prefix is consumed).
  uint64_t subplan_hits = 0;
};

/// \brief Evaluates `query` with materializing hash joins and returns the
/// full *distinct* projected result as a table named `name`.
///
/// Unlike QueryCursor there is no early exit of any kind — the cost of the
/// whole join is always paid, which is exactly the behaviour the
/// progressive-evaluation component is designed to avoid — with one opt-in
/// exception: when `subset_guard` is non-null, projection stops at the first
/// distinct tuple NOT contained in the guard set, setting `*subset_violated`
/// (which must be non-null then) and returning the partial table. That turns
/// the block path into an exact extra-tuple check: guard = R_out, violation
/// = the candidate produces a tuple outside it.
/// `interrupt` (may be empty) is polled once per morsel of work — including
/// inside hash-index builds this call triggers — and when it fires the
/// evaluation stops with ResourceExhausted within one morsel.
/// `policy` picks the probe kernels (scalar vs batched), the morsel dispatch
/// (serial vs pool workers), SIP filtering, and subplan memoization; the
/// returned table is byte-identical under every combination.
/// `run_stats` (may be null) receives per-run counters.
Result<Table> ExecuteBlock(const Database& db, const PJQuery& query,
                           const std::string& name,
                           std::function<bool()> interrupt = {},
                           const ExecPolicy& policy = {},
                           const TupleSet* subset_guard = nullptr,
                           bool* subset_violated = nullptr,
                           BlockRunStats* run_stats = nullptr);

}  // namespace fastqre
