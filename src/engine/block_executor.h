// Block (materializing) PJ-query evaluation.
//
// The counterpart of the pipelined QueryCursor: evaluates the query
// bottom-up with hash joins, materializing each intermediate relation in
// full — "running it as a single block operation" in the paper's words
// (Section 4.1), i.e. the behaviour of a conventional DBMS executing a
// candidate query without a get-next interface. The naive baseline's
// non-progressive validation uses this path; it is also a differential
// oracle for the pipelined executor in tests.
//
// Execution is morsel-driven (DESIGN.md §12): each join step partitions its
// driving relation into fixed-size morsels, processed either on the calling
// thread or on a shared ThreadPool per the ExecPolicy, with per-morsel
// result buffers merged back in morsel-index order — so the output table is
// byte-identical at any thread count, morsel size, or kernel choice.
#pragma once

#include <functional>

#include "common/result.h"
#include "engine/exec_policy.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Evaluates `query` with materializing hash joins and returns the
/// full *distinct* projected result as a table named `name`.
///
/// Unlike QueryCursor there is no early exit of any kind: the cost of the
/// whole join is always paid, which is exactly the behaviour the
/// progressive-evaluation component is designed to avoid.
/// `interrupt` (may be empty) is polled once per morsel of work; when it
/// fires the evaluation stops with ResourceExhausted within one morsel.
/// `policy` picks the probe kernels (scalar vs batched) and the morsel
/// dispatch (serial vs pool workers); the result is identical either way.
Result<Table> ExecuteBlock(const Database& db, const PJQuery& query,
                           const std::string& name,
                           std::function<bool()> interrupt = {},
                           const ExecPolicy& policy = {});

}  // namespace fastqre
