#include "engine/compare.h"

namespace fastqre {

TupleSet ProjectToTupleSet(const Table& table, const std::vector<ColumnId>& cols) {
  // gov: bounded — one projection of a caller-chosen table; callers on the
  // search path project R_out (small) or governor-charged block results.
  TupleSet out;
  out.reserve(table.num_rows());
  std::vector<ValueId> tuple(cols.size());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      tuple[i] = table.column(cols[i]).at(r);
    }
    out.insert(tuple);
  }
  return out;
}

TupleSet TableToTupleSet(const Table& table) {
  std::vector<ColumnId> cols(table.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<ColumnId>(i);
  return ProjectToTupleSet(table, cols);
}

bool IsSubsetOf(const TupleSet& sub, const TupleSet& super) {
  if (sub.size() > super.size()) return false;
  // det: order-insensitive — pure membership conjunction; the verdict is the
  // same for every visiting order.
  for (const auto& t : sub) {
    if (super.count(t) == 0) return false;
  }
  return true;
}

bool ProjectionSubsetOf(const Table& table, const std::vector<ColumnId>& cols,
                        const TupleSet& super) {
  std::vector<ValueId> tuple(cols.size());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      tuple[i] = table.column(cols[i]).at(r);
    }
    if (super.count(tuple) == 0) return false;
  }
  return true;
}

}  // namespace fastqre
