#include "engine/compare.h"

#include "common/interrupt.h"

namespace fastqre {

TupleSet ProjectToTupleSet(const Table& table, const std::vector<ColumnId>& cols,
                           const std::function<bool()>& interrupt) {
  // gov: bounded — one projection of a caller-chosen table; callers on the
  // search path project R_out (small) or governor-charged block results.
  TupleSet out;
  out.reserve(table.num_rows());
  std::vector<ValueId> tuple(cols.size());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if ((r & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      // Partial set: the caller re-checks its stop predicate and discards.
      return out;
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      tuple[i] = table.column(cols[i]).at(r);
    }
    out.insert(tuple);
  }
  return out;
}

TupleSet TableToTupleSet(const Table& table,
                         const std::function<bool()>& interrupt) {
  std::vector<ColumnId> cols(table.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<ColumnId>(i);
  return ProjectToTupleSet(table, cols, interrupt);
}

bool IsSubsetOf(const TupleSet& sub, const TupleSet& super,
                const std::function<bool()>& interrupt) {
  if (sub.size() > super.size()) return false;
  // det: order-insensitive — pure membership conjunction; the verdict is the
  // same for every visiting order.
  uint64_t probed = 0;
  for (const auto& t : sub) {
    if ((++probed & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      // Conservative "no" under interrupt; the caller re-checks its stop
      // predicate before trusting a false verdict.
      return false;
    }
    if (super.count(t) == 0) return false;
  }
  return true;
}

bool ProjectionSubsetOf(const Table& table, const std::vector<ColumnId>& cols,
                        const TupleSet& super,
                        const std::function<bool()>& interrupt) {
  std::vector<ValueId> tuple(cols.size());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if ((r & kInterruptPollMask) == 0 && interrupt && interrupt()) {
      return false;
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      tuple[i] = table.column(cols[i]).at(r);
    }
    if (super.count(tuple) == 0) return false;
  }
  return true;
}

}  // namespace fastqre
