#include "engine/builder.h"

namespace fastqre {

InstanceId QueryBuilder::Instance(const std::string& table_name) {
  auto id = db_->FindTable(table_name);
  if (!id.ok()) {
    if (first_error_.ok()) first_error_ = id.status();
    return query_.AddInstance(0);
  }
  return query_.AddInstance(*id);
}

ColumnId QueryBuilder::ResolveColumn(InstanceId instance,
                                     const std::string& column) {
  if (instance >= query_.num_instances()) {
    if (first_error_.ok()) {
      first_error_ = Status::InvalidArgument("instance id out of range");
    }
    return 0;
  }
  auto col = db_->table(query_.instance_table(instance)).FindColumn(column);
  if (!col.ok()) {
    if (first_error_.ok()) first_error_ = col.status();
    return 0;
  }
  return *col;
}

void QueryBuilder::Join(InstanceId a, const std::string& col_a, InstanceId b,
                        const std::string& col_b) {
  ColumnId ca = ResolveColumn(a, col_a);
  ColumnId cb = ResolveColumn(b, col_b);
  query_.AddJoin(a, ca, b, cb);
}

void QueryBuilder::Project(InstanceId instance, const std::string& column) {
  query_.AddProjection(instance, ResolveColumn(instance, column));
}

void QueryBuilder::Select(InstanceId instance, const std::string& column,
                          const Value& value) {
  query_.AddSelection(instance, ResolveColumn(instance, column),
                      db_->dictionary()->Intern(value));
}

Result<PJQuery> QueryBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  return query_;
}

}  // namespace fastqre
