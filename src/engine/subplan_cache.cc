#include "engine/subplan_cache.h"

namespace fastqre {

SubplanCache::Handle SubplanCache::Lookup(const Signature& sig) {
  MutexLock lock(&mu_);
  Entry& entry = entries_[sig];
  ++entry.uses;
  if (entry.table) {
    lru_.splice(lru_.begin(), lru_, entry.lru_it);
    ++hits_;
    return entry.table;
  }
  ++misses_;
  return nullptr;
}

bool SubplanCache::WantsInsert(const Signature& sig) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(sig);
  if (it == entries_.end()) return false;  // never looked up: not admitted
  return it->second.table == nullptr &&
         it->second.uses >= static_cast<uint64_t>(admission_);
}

bool SubplanCache::Insert(const Signature& sig, Handle table) {
  if (table == nullptr || table->bytes > budget_bytes_) return false;
  // Degradation ladder level 2 (pipelined-only): stop materializing.
  if (governor_ != nullptr && !governor_->materialization_allowed()) {
    return false;
  }
  // Charge the governor BEFORE taking mu_: a failed charge can escalate the
  // degradation ladder, whose pressure hook re-enters this cache via
  // ShrinkTo (which takes mu_). Charging under the lock would deadlock.
  // "subplan-build" doubles as a fault-injection site: an injected
  // alloc-fail refuses the store (the candidate still completes — memoizing
  // is an acceleration, never a correctness dependency).
  bool charged = true;
  if (governor_ != nullptr) {
    charged = !governor_->FaultPointAllocFails("subplan-build") &&
              governor_->TryCharge(table->bytes, "subplan-build");
    if (!charged) return false;
  }
  MutexLock lock(&mu_);
  Entry& entry = entries_[sig];
  if (entry.table != nullptr ||
      entry.uses < static_cast<uint64_t>(admission_)) {
    // Lost an insert race, or not admitted (the producer snapshots on the
    // advisory WantsInsert answer, which can go stale).
    if (governor_ != nullptr) governor_->Release(table->bytes);
    return false;
  }
  entry.table = std::move(table);
  bytes_used_ += entry.table->bytes;
  lru_.push_front(&entry);
  entry.lru_it = lru_.begin();
  EvictDownTo(budget_bytes_);
  return true;
}

void SubplanCache::EvictDownTo(size_t target_bytes) {
  while (bytes_used_ > target_bytes && !lru_.empty()) {
    Entry* victim = lru_.back();
    lru_.pop_back();
    bytes_used_ -= victim->table->bytes;
    // Release is atomic-only: safe while holding mu_.
    if (governor_ != nullptr) governor_->Release(victim->table->bytes);
    victim->table.reset();  // readers keep their pins
    ++evictions_;
  }
}

void SubplanCache::ShrinkTo(size_t target_bytes) {
  MutexLock lock(&mu_);
  EvictDownTo(target_bytes);
}

size_t SubplanCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_used_;
}

}  // namespace fastqre
