#include "engine/executor.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/strings.h"

namespace fastqre {

Result<std::unique_ptr<QueryCursor>> QueryCursor::Create(
    const Database& db, const PJQuery& query, std::function<bool()> interrupt,
    const std::vector<VirtualJoin>& virtual_joins, const ExecPolicy& policy) {
  if (query.num_instances() == 0) {
    return Status::InvalidArgument("query has no instances");
  }
  const size_t n = query.num_instances();

  // Connectivity and frontier planning treat virtual joins exactly like
  // physical ones: a query whose walk chains were all substituted away can
  // be disconnected on joins() alone yet connected through the cache.
  struct PlanEdge {
    InstanceId a, b;
  };
  std::vector<PlanEdge> plan_edges;
  for (const auto& j : query.joins()) {
    if (j.a != j.b) plan_edges.push_back(PlanEdge{j.a, j.b});
  }
  for (const auto& vj : virtual_joins) {
    if (vj.a == vj.b) {
      return Status::InvalidArgument("virtual join endpoints coincide");
    }
    if (vj.a >= n || vj.b >= n) {
      return Status::InvalidArgument("virtual join references unknown instance");
    }
    plan_edges.push_back(PlanEdge{vj.a, vj.b});
  }
  {
    std::vector<std::vector<InstanceId>> nbr(n);
    for (const PlanEdge& e : plan_edges) {
      nbr[e.a].push_back(e.b);
      nbr[e.b].push_back(e.a);
    }
    std::vector<bool> seen(n, false);
    std::vector<InstanceId> stack{0};
    seen[0] = true;
    size_t reached = 1;
    while (!stack.empty()) {
      InstanceId v = stack.back();
      stack.pop_back();
      for (InstanceId w : nbr[v]) {
        if (!seen[w]) {
          seen[w] = true;
          ++reached;
          stack.push_back(w);
        }
      }
    }
    if (reached != n) {
      return Status::InvalidArgument(
          "query graph is disconnected (cross product)");
    }
  }

  auto cursor = std::make_unique<QueryCursor>(PrivateTag{});
  cursor->db_ = &db;
  cursor->policy_ = policy;
  cursor->interrupt_ = std::move(interrupt);

  // Pick the start instance: prefer one carrying selections so probing
  // queries start from an index point-lookup instead of a scan.
  InstanceId start = 0;
  {
    std::vector<int> sel_count(n, 0);
    for (const auto& s : query.selections()) sel_count[s.instance]++;
    int best = 0;
    for (InstanceId i = 0; i < n; ++i) {
      if (sel_count[i] > best) {
        best = sel_count[i];
        start = i;
      }
    }
  }

  // Greedy selective-first plan order: repeatedly place the frontier
  // instance with (a) the most selections, (b) the most join edges into the
  // already-placed set, (c) the smallest table. This keeps the partial-join
  // frontier small — crucial for probing queries, where every projection
  // instance carries selections but naive BFS would wander through
  // high-fanout intermediates first.
  std::vector<std::vector<size_t>> adj(n);  // instance -> plan_edges indexes
  for (size_t ei = 0; ei < plan_edges.size(); ++ei) {
    adj[plan_edges[ei].a].push_back(ei);
    adj[plan_edges[ei].b].push_back(ei);
  }
  std::vector<int> sel_count(n, 0);
  for (const auto& s : query.selections()) sel_count[s.instance]++;
  std::vector<int> pos(n, -1);
  std::vector<InstanceId> order;
  order.reserve(n);
  order.push_back(start);
  pos[start] = 0;
  while (order.size() < n) {
    InstanceId best = n;  // sentinel
    int best_sel = -1, best_joins = -1;
    size_t best_rows = 0;
    for (InstanceId v = 0; v < n; ++v) {
      if (pos[v] >= 0) continue;
      int joins_in = 0;
      for (size_t ei : adj[v]) {
        const PlanEdge& e = plan_edges[ei];
        InstanceId other = (e.a == v) ? e.b : e.a;
        if (pos[other] >= 0) ++joins_in;
      }
      if (joins_in == 0) continue;  // not on the frontier yet
      size_t rows = db.table(query.instance_table(v)).num_rows();
      bool better = false;
      if (sel_count[v] != best_sel) better = sel_count[v] > best_sel;
      else if (joins_in != best_joins) better = joins_in > best_joins;
      else better = rows < best_rows;
      if (best == n || better) {
        best = v;
        best_sel = sel_count[v];
        best_joins = joins_in;
        best_rows = rows;
      }
    }
    if (best == n) {
      return Status::Internal(
          "plan order did not reach all instances of a connected query");
    }
    pos[best] = static_cast<int>(order.size());
    order.push_back(best);
  }

  cursor->steps_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    Step& step = cursor->steps_[p];
    step.instance = order[p];
    step.table = &db.table(query.instance_table(order[p]));
  }

  // Assign joins: same-instance joins become self filters; cross-instance
  // joins key the hash index at the later endpoint's plan position.
  std::vector<std::vector<ColumnId>> key_cols(n);
  for (const auto& j : query.joins()) {
    if (j.a == j.b) {
      cursor->steps_[pos[j.a]].self_filters.emplace_back(j.col_a, j.col_b);
      continue;
    }
    int pa = pos[j.a], pb = pos[j.b];
    int later = std::max(pa, pb);
    bool a_is_later = (pa == later);
    ColumnId local_col = a_is_later ? j.col_a : j.col_b;
    int from_pos = a_is_later ? pb : pa;
    ColumnId from_col = a_is_later ? j.col_b : j.col_a;
    key_cols[later].push_back(local_col);
    cursor->steps_[later].key_sources.push_back(
        KeySource{from_pos, from_col, kNullValueId});
    if (policy.use_sip) {
      // Sideways information passing: at the earlier endpoint, skip rows
      // whose join value never occurs in the later table's join column —
      // they cannot complete to a full binding, so no deeper step need be
      // attempted for them (DESIGN.md §13).
      cursor->steps_[from_pos].sip_filters.emplace_back(
          from_col, &db.GetOrBuildPresenceFilter(
                        query.instance_table(a_is_later ? j.a : j.b),
                        local_col));
    }
  }

  // Virtual joins attach to whichever endpoint is planned later, oriented so
  // the reach map is read from the already-bound side. They start life as
  // row filters; a keyless step below promotes one to its candidate driver.
  for (const auto& vj : virtual_joins) {
    int pa = pos[vj.a], pb = pos[vj.b];
    int later = std::max(pa, pb);
    bool a_is_later = (pa == later);
    ReachSpec spec;
    spec.from_pos = a_is_later ? pb : pa;
    spec.from_col = a_is_later ? vj.col_b : vj.col_a;
    spec.local_col = a_is_later ? vj.col_a : vj.col_b;
    spec.map = a_is_later ? vj.b_to_a : vj.a_to_b;
    cursor->steps_[later].reach_filters.push_back(spec);
    // SIP for walk substitutions: the earlier endpoint tests its join value
    // against the bound-side key domain of the reach relation — a value with
    // no reachable partner fails every later containment check anyway.
    const BitmapFilter* domain = a_is_later ? vj.b_domain : vj.a_domain;
    if (policy.use_sip && domain != nullptr) {
      cursor->steps_[spec.from_pos].sip_filters.emplace_back(spec.from_col,
                                                             domain);
    }
  }

  // Selections become index-key components (constants), so lookups return
  // only rows already satisfying them. Each constant's slot is recorded so
  // Rebind() can swap in a new probe tuple without replanning.
  std::vector<ColumnId> start_sel_cols;
  for (const auto& s : query.selections()) {
    int p = pos[s.instance];
    if (p == 0) {
      start_sel_cols.push_back(s.column);
    } else {
      key_cols[p].push_back(s.column);
    }
    cursor->sel_slots_.emplace_back(static_cast<size_t>(p),
                                    cursor->steps_[p].key_sources.size());
    cursor->steps_[p].key_sources.push_back(KeySource{-1, 0, s.value});
  }

  // Build/fetch indexes.
  if (!start_sel_cols.empty()) {
    cursor->steps_[0].index =
        &db.GetOrBuildIndex(query.instance_table(order[0]), start_sel_cols);
  }
  for (size_t p = 1; p < n; ++p) {
    Step& step = cursor->steps_[p];
    if (key_cols[p].empty()) {
      if (step.reach_filters.empty()) {
        return Status::Internal(
            "plan step without incoming join key in a connected query");
      }
      // Promote one virtual join to candidate driver: enumerate the values
      // reachable from the bound side and probe a single-column index for
      // each, instead of scanning the table.
      step.reach_driver = step.reach_filters.front();
      step.reach_filters.erase(step.reach_filters.begin());
      step.reach_index = &db.GetOrBuildIndex(
          query.instance_table(order[p]), {step.reach_driver->local_col});
      continue;
    }
    step.index =
        &db.GetOrBuildIndex(query.instance_table(order[p]), key_cols[p]);
  }

  cursor->projections_ = query.projections();
  for (const auto& proj : cursor->projections_) {
    cursor->proj_slots_.emplace_back(static_cast<size_t>(pos[proj.instance]),
                                     proj.column);
  }

  cursor->candidates_.resize(n, nullptr);
  cursor->owned_candidates_.resize(n);
  cursor->cursor_.resize(n, 0);
  cursor->bound_.resize(n, 0);
  cursor->key_buf_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    cursor->key_buf_[p].resize(cursor->steps_[p].key_sources.size());
  }
  return cursor;
}

bool QueryCursor::RowPasses(const Step& step, RowId row) const {
  for (const auto& [ca, cb] : step.self_filters) {
    if (step.table->column(ca).at(row) != step.table->column(cb).at(row)) {
      return false;
    }
  }
  for (const auto& [col, val] : step.const_filters) {
    if (step.table->column(col).at(row) != val) return false;
  }
  for (const auto& [col, filter] : step.sip_filters) {
    if (!filter->Test(step.table->column(col).at(row))) {
      ++sip_skipped_;
      return false;
    }
  }
  for (const ReachSpec& rf : step.reach_filters) {
    ValueId u =
        steps_[rf.from_pos].table->column(rf.from_col).at(bound_[rf.from_pos]);
    auto it = rf.map->find(u);
    if (it == rf.map->end()) return false;
    ValueId v = step.table->column(rf.local_col).at(row);
    if (!std::binary_search(it->second.begin(), it->second.end(), v)) {
      return false;
    }
  }
  return true;
}

void QueryCursor::InitCandidates(size_t pos) {
  const Step& step = steps_[pos];
  cursor_[pos] = 0;
  if (step.reach_driver.has_value()) {
    const ReachSpec& d = *step.reach_driver;
    std::vector<RowId>& owned = owned_candidates_[pos];
    owned.clear();
    candidates_[pos] = &owned;
    ValueId u =
        steps_[d.from_pos].table->column(d.from_col).at(bound_[d.from_pos]);
    auto it = d.map->find(u);
    if (it == d.map->end()) return;  // nothing reachable: empty candidates
    if (policy_.batch_probes) {
      // Batched build: the cached reach list is a dense sorted ValueId span,
      // probed one morsel at a time through LookupBatch — the vectorized
      // containment filter of DESIGN.md §12. Append order (value order, then
      // index row order per value) matches the scalar loop exactly.
      const std::vector<ValueId>& vals = it->second;
      const size_t chunk = policy_.MorselSize();
      for (size_t lo = 0; lo < vals.size(); lo += chunk) {
        const size_t len = std::min(chunk, vals.size() - lo);
        rows_examined_ += len;
        if (interrupt_ && interrupt_()) {
          interrupted_ = true;
          return;
        }
        (void)step.reach_index->LookupBatch(vals.data() + lo, len,
                                            &batch_buf_);
        owned.insert(owned.end(), batch_buf_.rows.begin(),
                     batch_buf_.rows.end());
      }
      return;
    }
    for (ValueId v : it->second) {
      ++rows_examined_;
      if ((rows_examined_ & kInterruptPollMask) == 0 && interrupt_ &&
          interrupt_()) {
        interrupted_ = true;
        return;
      }
      const std::vector<RowId>& rows = step.reach_index->Lookup1(v);
      owned.insert(owned.end(), rows.begin(), rows.end());
    }
    return;
  }
  if (step.index == nullptr) {
    candidates_[pos] = nullptr;  // full scan
    return;
  }
  auto& key = key_buf_[pos];
  for (size_t i = 0; i < step.key_sources.size(); ++i) {
    const KeySource& ks = step.key_sources[i];
    key[i] = (ks.from_pos < 0)
                 ? ks.constant
                 : steps_[ks.from_pos].table->column(ks.column).at(
                       bound_[ks.from_pos]);
  }
  candidates_[pos] =
      key.size() == 1 ? &step.index->Lookup1(key[0]) : &step.index->Lookup(key);
}

void QueryCursor::Rebind(const ValueId* values, size_t n) {
  // Replace the constants of the last n selections (AddSelection order):
  // probing callers clone a base query (possibly carrying its own
  // selections) and append one selection per projection column.
  const size_t offset = sel_slots_.size() - n;
  for (size_t i = 0; i < n; ++i) {
    const auto& [p, k] = sel_slots_[offset + i];
    steps_[p].key_sources[k].constant = values[i];
  }
  started_ = false;
  done_ = false;
  interrupted_ = false;
  depth_ = -1;
}

bool QueryCursor::Next(std::vector<ValueId>* row) {
  if (done_) return false;
  if (!started_) {
    started_ = true;
    depth_ = 0;
    InitCandidates(0);
    if (interrupted_) return false;
  }
  const int last = static_cast<int>(steps_.size()) - 1;
  while (depth_ >= 0) {
    const Step& step = steps_[depth_];
    const size_t limit = candidates_[depth_] != nullptr
                             ? candidates_[depth_]->size()
                             : step.table->num_rows();
    bool advanced = false;
    while (cursor_[depth_] < limit) {
      RowId r = candidates_[depth_] != nullptr
                    ? (*candidates_[depth_])[cursor_[depth_]]
                    : static_cast<RowId>(cursor_[depth_]);
      ++cursor_[depth_];
      ++rows_examined_;
      if ((rows_examined_ & kInterruptPollMask) == 0 && interrupt_ &&
          interrupt_()) {
        interrupted_ = true;
        return false;
      }
      if (RowPasses(step, r)) {
        bound_[depth_] = r;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      --depth_;
      continue;
    }
    if (depth_ == last) {
      row->resize(proj_slots_.size());
      for (size_t i = 0; i < proj_slots_.size(); ++i) {
        const auto& [p, col] = proj_slots_[i];
        (*row)[i] = steps_[p].table->column(col).at(bound_[p]);
      }
      return true;
    }
    ++depth_;
    InitCandidates(depth_);
    if (interrupted_) return false;
  }
  done_ = true;
  return false;
}

Result<Table> ExecuteToTable(const Database& db, const PJQuery& query,
                             const std::string& name,
                             const std::vector<std::string>& column_names) {
  if (query.projections().empty()) {
    return Status::InvalidArgument("query has no projection columns");
  }
  FASTQRE_ASSIGN_OR_RETURN(auto cursor, QueryCursor::Create(db, query));

  Table out(name, db.dictionary());
  std::unordered_set<std::string> used_names;
  for (size_t i = 0; i < query.projections().size(); ++i) {
    const auto& p = query.projections()[i];
    const Column& src =
        db.table(query.instance_table(p.instance)).column(p.column);
    std::string col_name =
        i < column_names.size() ? column_names[i] : src.name();
    while (used_names.count(col_name) > 0) col_name += "_";
    used_names.insert(col_name);
    FASTQRE_RETURN_NOT_OK(out.AddColumn(col_name, src.type()));
  }

  // NOLINT-ANALYZER(governed-alloc): CLI/test materialization helper off
  // the governed search path; validation materializes via the block executor.
  std::unordered_set<std::vector<ValueId>, IdTupleHash> seen;
  std::vector<ValueId> row;
  while (cursor->Next(&row)) {
    if (seen.insert(row).second) {
      out.AppendRowIds(row);
    }
  }
  return out;
}

}  // namespace fastqre
