// Cross-candidate subplan memoization for block execution (DESIGN.md §13).
//
// Convoy candidates share long join prefixes: the block executor joins
// instances in a deterministic smallest-table-first order, so two candidates
// whose queries agree on the first k placed instances (tables, join key
// sources, selections, self joins, and the interface columns the suffix
// reads) recompute the same intermediate relation. This cache stores those
// intermediates — flat RowId matrices exactly as ExecuteBlock materializes
// them — keyed by a canonical prefix signature, so the second and later
// candidates of a convoy resume from the deepest cached prefix instead of
// rejoining from scratch.
//
// The cache lives in the engine layer (block_executor is the producer and
// consumer) and therefore keeps its own counters instead of depending on
// qre/stats.h; the QRE engine snapshots them into QreStats per run.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/hash.h"
#include "common/resource_governor.h"
#include "common/thread_annotations.h"
#include "storage/table.h"

namespace fastqre {

/// \brief One memoized intermediate relation: the block executor's flat
/// row-major binding matrix after some join-prefix, plus the pre-filter
/// enumeration count that produced it. Immutable after insertion; consumers
/// hold it through a shared_ptr pin, so eviction never invalidates a reader.
struct SubplanTable {
  // gov: charged — Insert charges stored tables to the governor
  // ("subplan-build"); rejected tables are transient caller-owned copies.
  std::vector<RowId> rows;  // width RowIds per binding row
  size_t width = 0;
  /// Pre-filter match rows enumerated while computing this prefix (the block
  /// executor's `produced` counter). Replayed into the consumer's counter on
  /// a hit so the intermediate-size-cap verdict is identical whether the
  /// prefix was recomputed or served from cache (cache-state invariance).
  uint64_t enumerated = 0;
  size_t bytes = 0;  // estimated resident size (budget accounting)
};

/// \brief Budgeted, thread-safe LRU cache of SubplanTables keyed by the
/// block executor's canonical join-prefix signature.
///
/// Admission: a prefix is stored only once it has been looked up at least
/// `admission` times (one-shot prefixes never pay the snapshot copy).
/// Eviction: LRU by table bytes down to `budget_bytes`; evicted entries keep
/// their use counters, so a re-hot prefix is re-admitted on its next
/// insert offer. Concurrency: Lookup/Insert are independently atomic; two
/// workers racing to insert the same key store byte-identical tables (block
/// intermediates are execution-configuration invariant), first wins.
class SubplanCache {
 public:
  using Signature = std::vector<uint32_t>;
  using Handle = std::shared_ptr<const SubplanTable>;

  /// `governor` (may be null) is charged for resident table bytes
  /// ("subplan-build", also a fault-injection site) and consulted before
  /// storing: once the degradation ladder reaches pipelined-only
  /// (DESIGN.md §11), inserts are refused.
  SubplanCache(size_t budget_bytes, int admission,
               std::shared_ptr<ResourceGovernor> governor = nullptr)
      : budget_bytes_(budget_bytes),
        admission_(admission),
        governor_(std::move(governor)) {}

  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  /// Returns the stored table for `sig` (bumping its use count and LRU
  /// position) or nullptr. Every call counts as one request toward the
  /// admission threshold.
  Handle Lookup(const Signature& sig);

  /// True when an Insert for `sig` would currently be accepted (admitted by
  /// use count and not already stored) — lets the producer skip the snapshot
  /// copy for prefixes the cache would refuse anyway. Advisory: the answer
  /// can change before Insert, which re-checks.
  bool WantsInsert(const Signature& sig) const;

  /// Offers a finished prefix table. Stores it iff the prefix is admitted,
  /// absent, within budget, and the governor accepts the charge (injected
  /// "subplan-build" alloc-fail or memory pressure refuses the store, never
  /// the candidate). Returns true when stored.
  bool Insert(const Signature& sig, Handle table);

  /// Evicts LRU tables until resident bytes drop to `target_bytes` (the
  /// governor's pressure action; also usable directly). Pinned readers are
  /// unaffected — eviction only drops the cache's references.
  void ShrinkTo(size_t target_bytes) EXCLUDES(mu_);

  /// Current resident table bytes (gauge).
  size_t bytes() const;

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

  /// Configured byte budget (for pressure-hook arithmetic).
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    // All fields are guarded by the owning cache's mu_ (expressed on the
    // containing map below; Clang attributes cannot name an outer class's
    // mutex from a nested struct).
    Handle table;  // null until stored (or after eviction)
    uint64_t uses = 0;
    std::list<Entry*>::iterator lru_it;  // valid iff table != nullptr
  };

  void EvictDownTo(size_t target_bytes) REQUIRES(mu_);

  const size_t budget_bytes_;
  const int admission_;
  // Charged before mu_ is taken on inserts (a failed charge may escalate
  // the governor, whose pressure hook re-enters this cache through
  // ShrinkTo); Release is atomic-only and safe under mu_ on eviction paths.
  const std::shared_ptr<ResourceGovernor> governor_;

  // Relaxed atomics: bumped from concurrent validation workers; the QRE
  // engine snapshots them into QreStats after each run.
  RelaxedCounter hits_ = 0;
  RelaxedCounter misses_ = 0;
  RelaxedCounter evictions_ = 0;

  mutable Mutex mu_;
  // Entries are never erased (only their tables are dropped), so Entry
  // pointers held by the LRU list stay stable.
  // gov: charged — each entry's table bytes are charged as "subplan-build"
  // and released on eviction; map nodes are per-signature metadata.
  std::unordered_map<Signature, Entry, IdTupleHash> entries_ GUARDED_BY(mu_);
  std::list<Entry*> lru_ GUARDED_BY(mu_);  // front = most recently used
  size_t bytes_used_ GUARDED_BY(mu_) = 0;
};

}  // namespace fastqre
