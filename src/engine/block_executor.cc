#include "engine/block_executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <unordered_set>

#include "common/hash.h"
#include "common/resource_governor.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/subplan_cache.h"

namespace fastqre {

namespace {

// Block-buffer bytes are accumulated locally (per morsel worker) and flushed
// to the governor in quanta, keeping the accounting cost off the per-row hot
// path.
constexpr uint64_t kChargeQuantumBytes = 64 * 1024;

// Hard cap on intermediate materialization: pathological candidate queries
// can otherwise exhaust memory before any time budget fires. Enforced
// exactly at merge time (so the verdict is identical in every execution
// configuration) and approximately inside each worker (so no single morsel
// materializes unboundedly past it). Subplan-cache hits replay the stored
// pre-filter enumeration count into the approximate counter, so the verdict
// is also identical whether a prefix was recomputed or served from cache.
constexpr size_t kMaxIntermediateRows = 20'000'000;

// Rows the batched kernel expands per LookupBatch call before filtering and
// appending: bounds the reusable match scratch even for keys with huge
// posting lists.
constexpr size_t kBatchExpandRowCap = 64 * 1024;

// Version tag leading every subplan signature, so a future encoding change
// can never alias entries written by an older one.
constexpr uint32_t kSubplanSigVersion = 1;

// Bindings the interface-dedup pass examines before deciding whether the
// collapse pays for itself (see the bail-out in iface_dedup below).
constexpr size_t kDedupSampleRows = 4096;

// Why the shared stop flag fired; first cause wins (CAS). Values double as
// merge-time status codes.
enum : int {
  kRunning = 0,
  kStopInterrupt = 1,
  kStopMemory = 2,
  kStopCap = 3,
};

// Releases every byte this block evaluation charged, on all return paths
// (the intermediates are freed when the function's locals unwind). Workers
// fold their flushed quanta into `charged` with relaxed adds; the final
// load happens after every worker joined, so the total is exact.
struct BlockChargeGuard {
  const std::shared_ptr<ResourceGovernor>& governor;
  std::atomic<uint64_t>& charged;
  ~BlockChargeGuard() {
    uint64_t total = charged.load(std::memory_order_relaxed);
    if (governor != nullptr && total > 0) governor->Release(total);
  }
};

// Same-instance filters (self joins, selections) of one plan step, resolved
// to raw column pointers once so the per-row check is a few loads.
struct LocalFilters {
  std::vector<std::pair<const ValueId*, const ValueId*>> self_eq;
  std::vector<std::pair<const ValueId*, ValueId>> sel_eq;

  // `include_selections` is false on probe steps, whose selections are
  // folded into the index key (see the key-wiring loop below) and therefore
  // already hold for every enumerated match.
  void Build(const Database& db, const PJQuery& query, InstanceId inst,
             bool include_selections) {
    const Table& t = db.table(query.instance_table(inst));
    for (const auto& j : query.joins()) {
      if (j.a == inst && j.b == inst) {
        self_eq.emplace_back(t.column(j.col_a).data().data(),
                             t.column(j.col_b).data().data());
      }
    }
    if (!include_selections) return;
    for (const auto& s : query.selections()) {
      if (s.instance == inst) {
        sel_eq.emplace_back(t.column(s.column).data().data(), s.value);
      }
    }
  }

  bool Passes(RowId r) const {
    for (const auto& [a, b] : self_eq) {
      if (a[r] != b[r]) return false;
    }
    for (const auto& [col, val] : sel_eq) {
      if (col[r] != val) return false;
    }
    return true;
  }
};

// Open-addressing set of fixed-width ValueId tuples over a flat arena: one
// hash-table slot per element and contiguous key storage, so membership
// inserts neither allocate nor copy a vector per tuple (the dedup loops
// below run one insert per intermediate row — a node-based set's per-insert
// malloc dominated their profile). Only membership is ever consulted, so
// the hash function never influences output order.
class FlatTupleSet {
 public:
  FlatTupleSet(size_t width, size_t expected) : width_(width) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, kEmptySlot);
  }

  // Inserts the `width` ids at `key`; returns true iff the tuple is new.
  bool Insert(const ValueId* key) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) Grow();
    const size_t mask = slots_.size() - 1;
    for (size_t s = Hash(key) & mask;; s = (s + 1) & mask) {
      const uint32_t idx = slots_[s];
      if (idx == kEmptySlot) {
        slots_[s] = static_cast<uint32_t>(count_);
        arena_.insert(arena_.end(), key, key + width_);
        ++count_;
        return true;
      }
      if (Equal(idx, key)) return false;
    }
  }

  // Membership without insertion (the streamed final step uses this to skip
  // probes that can only re-produce an already-emitted tuple).
  bool Contains(const ValueId* key) const {
    const size_t mask = slots_.size() - 1;
    for (size_t s = Hash(key) & mask;; s = (s + 1) & mask) {
      const uint32_t idx = slots_[s];
      if (idx == kEmptySlot) return false;
      if (Equal(idx, key)) return true;
    }
  }

  size_t size() const { return count_; }

 private:
  static constexpr uint32_t kEmptySlot = ~0u;

  uint64_t Hash(const ValueId* key) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < width_; ++i) {
      h ^= key[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }

  bool Equal(uint32_t idx, const ValueId* key) const {
    const ValueId* stored = arena_.data() + static_cast<size_t>(idx) * width_;
    for (size_t i = 0; i < width_; ++i) {
      if (stored[i] != key[i]) return false;
    }
    return true;
  }

  void Grow() {
    std::vector<uint32_t> bigger(slots_.size() * 2, kEmptySlot);
    const size_t mask = bigger.size() - 1;
    for (uint32_t idx : slots_) {
      if (idx == kEmptySlot) continue;
      size_t s = Hash(arena_.data() + static_cast<size_t>(idx) * width_) & mask;
      while (bigger[s] != kEmptySlot) s = (s + 1) & mask;
      bigger[s] = idx;
    }
    slots_.swap(bigger);
  }

  size_t width_;
  size_t count_ = 0;
  std::vector<uint32_t> slots_;
  std::vector<ValueId> arena_;
};

// SIP filters of one plan step (DESIGN.md §13): a row is skipped when some
// future join partner's column provably lacks the row's join value. Resolved
// to raw column pointers once per step, like LocalFilters; kept separate so
// skips are counted as SIP's, not a local predicate's.
struct SipFilters {
  std::vector<std::pair<const ValueId*, const BitmapFilter*>> tests;

  bool Passes(RowId r) const {
    for (const auto& [col, filter] : tests) {
      if (!filter->Test(col[r])) return false;
    }
    return true;
  }
};

// One future-join SIP constraint of a plan step: the step instance's
// `local_col` must hit the presence filter of `other_table`.`other_col`.
// Per-candidate (the partner set depends on the candidate's later joins), so
// SIP is only applied to steps whose output is never memoized — see
// resolve_sip below — keeping subplan signatures SIP-free and shareable.
struct SipDescriptor {
  ColumnId local_col;
  TableId other_table;
  ColumnId other_col;

  bool operator<(const SipDescriptor& o) const {
    if (local_col != o.local_col) return local_col < o.local_col;
    if (other_table != o.other_table) return other_table < o.other_table;
    return other_col < o.other_col;
  }
};

}  // namespace

Result<Table> ExecuteBlock(const Database& db, const PJQuery& query,
                           const std::string& name,
                           std::function<bool()> interrupt,
                           const ExecPolicy& policy,
                           const TupleSet* subset_guard, bool* subset_violated,
                           BlockRunStats* run_stats) {
  const size_t n = query.num_instances();
  if (n == 0) return Status::InvalidArgument("query has no instances");
  if (!query.IsConnected()) {
    return Status::InvalidArgument("query graph is disconnected (cross product)");
  }
  if (query.projections().empty()) {
    return Status::InvalidArgument("query has no projection columns");
  }
  if (subset_guard != nullptr && subset_violated == nullptr) {
    return Status::InvalidArgument("subset_guard requires subset_violated");
  }
  if (subset_violated != nullptr) *subset_violated = false;
  const size_t morsel = policy.MorselSize();

  // Governor accounting for the materialized intermediates (DESIGN.md §11).
  // Cumulative across join steps — a conservative overestimate of the peak —
  // and fully released on exit via the guard below. A refused charge
  // dismisses this candidate only (the validator maps candidate-local
  // ResourceExhausted to kError); it never aborts the whole search.
  // Memoized prefixes served from the subplan cache are charged there
  // ("subplan-build") instead, for the cache's lifetime.
  // The policy's governor is the engine driving this candidate; the
  // database attachment is only a fallback for standalone executor use —
  // it is last-attach-wins across engines, so charging it here would let a
  // concurrent engine's exhausted ladder dismiss THIS engine's candidates.
  const std::shared_ptr<ResourceGovernor> governor =
      policy.governor != nullptr ? policy.governor : db.governor();
  std::atomic<uint64_t> charged_bytes{0};
  BlockChargeGuard charge_guard{governor, charged_bytes};

  // Shared stop flag: set by whichever morsel first observes an interrupt, a
  // refused charge, or the intermediate cap; later morsels exit immediately.
  // Relaxed suffices — the flag guards no data (per-morsel buffers are
  // published by the RunMorsels join) and the first-cause CAS is exact.
  std::atomic<int> stop{kRunning};
  auto raise_stop = [&stop](int cause) {
    int expected = kRunning;
    (void)stop.compare_exchange_strong(expected, cause,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed);
  };
  auto stop_status = [&stop]() {
    switch (stop.load(std::memory_order_relaxed)) {
      case kStopMemory:
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      case kStopCap:
        return Status::ResourceExhausted(
            "block evaluation exceeded the intermediate-size cap");
      default:
        return Status::ResourceExhausted("block evaluation interrupted");
    }
  };
  // Approximate running total of appended intermediate rows, for the
  // in-worker cap guard; the exact (configuration-independent) cap verdict
  // is re-checked on the merged total after each step.
  std::atomic<size_t> produced{0};
  // SIP skips across all steps and workers (observability only).
  std::atomic<uint64_t> sip_skipped{0};

  // Left-deep join order: start anywhere, repeatedly attach an instance
  // adjacent to the placed set (any order is correct; smallest-table-first
  // keeps intermediates modest without changing the block semantics).
  std::vector<std::vector<size_t>> adj(n);
  for (size_t ji = 0; ji < query.joins().size(); ++ji) {
    const auto& j = query.joins()[ji];
    if (j.a == j.b) continue;
    adj[j.a].push_back(ji);
    adj[j.b].push_back(ji);
  }
  std::vector<int> pos(n, -1);
  std::vector<InstanceId> order{0};
  pos[0] = 0;
  while (order.size() < n) {
    InstanceId best = static_cast<InstanceId>(n);
    size_t best_rows = 0;
    for (InstanceId v = 0; v < n; ++v) {
      if (pos[v] >= 0) continue;
      bool frontier = false;
      for (size_t ji : adj[v]) {
        const auto& j = query.joins()[ji];
        InstanceId other = (j.a == v) ? j.b : j.a;
        if (pos[other] >= 0) frontier = true;
      }
      if (!frontier) continue;
      size_t rows = db.table(query.instance_table(v)).num_rows();
      if (best == n || rows < best_rows) {
        best = v;
        best_rows = rows;
      }
    }
    if (best == n) return Status::Internal("connected query not traversable");
    pos[best] = static_cast<int>(order.size());
    order.push_back(best);
  }

  // SIP descriptors per plan position: joins from the placed instance to a
  // *later*-placed one, i.e. filters the placed side can apply before the
  // partner's step exists (DESIGN.md §13, skip-only-provably-absent).
  std::vector<std::vector<SipDescriptor>> sip_descs(n);
  if (policy.use_sip) {
    for (const auto& j : query.joins()) {
      if (j.a == j.b) continue;
      const int pa = pos[j.a], pb = pos[j.b];
      const int earlier = std::min(pa, pb);
      const bool a_is_earlier = (pa == earlier);
      sip_descs[earlier].push_back(SipDescriptor{
          a_is_earlier ? j.col_a : j.col_b,
          query.instance_table(a_is_earlier ? j.b : j.a),
          a_is_earlier ? j.col_b : j.col_a});
    }
    // det: order-insensitive — canonicalized per step for signature
    // stability; the tests are a conjunction, so their order is immaterial.
    for (auto& descs : sip_descs) std::sort(descs.begin(), descs.end());
  }
  // With memoization active, SIP is restricted to the final step: its output
  // is never cached, so the per-candidate filter set cannot leak into a
  // shared intermediate — prefixes stay SIP-free, byte-identical across
  // candidates, and their signatures need no SIP descriptors. Without a
  // cache every step filters (nothing is shared, so nothing can alias).
  const bool sip_all_steps =
      policy.use_sip && policy.subplan_cache == nullptr;
  auto resolve_sip = [&](size_t p) {
    SipFilters filters;
    if (!policy.use_sip || (!sip_all_steps && p + 1 < n)) return filters;
    const Table& t = db.table(query.instance_table(order[p]));
    for (const SipDescriptor& d : sip_descs[p]) {
      filters.tests.emplace_back(
          t.column(d.local_col).data().data(),
          &db.GetOrBuildPresenceFilter(d.other_table, d.other_col));
    }
    return filters;
  };

  // Canonical prefix signatures (DESIGN.md §13): sigs[p] encodes everything
  // that determines the binding matrix after step p — per placed instance
  // its table, local predicates, SIP set, and (for p >= 1) the join-key
  // wiring in plan-position space. Plan positions, not instance ids, so two
  // candidates sharing a prefix shape alias regardless of numbering;
  // projections are deliberately absent (they only shape the final
  // projection, never the intermediates).
  SubplanCache* cache = policy.subplan_cache;
  std::vector<SubplanCache::Signature> sigs;
  // Step key wiring, computed once here and reused by the execution loop
  // below: key_cols[p] are the probe columns of step p's index,
  // key_sources[p] the (plan position, column) each key component reads.
  std::vector<std::vector<ColumnId>> key_cols(n);
  std::vector<std::vector<std::pair<int, ColumnId>>> key_sources(n);
  for (size_t p = 1; p < n; ++p) {
    const InstanceId inst = order[p];
    for (const auto& j : query.joins()) {
      if (j.a == j.b) continue;
      InstanceId other;
      ColumnId local_col, other_col;
      if (j.a == inst && pos[j.b] >= 0 && pos[j.b] < static_cast<int>(p)) {
        other = j.b;
        local_col = j.col_a;
        other_col = j.col_b;
      } else if (j.b == inst && pos[j.a] >= 0 &&
                 pos[j.a] < static_cast<int>(p)) {
        other = j.a;
        local_col = j.col_b;
        other_col = j.col_a;
      } else {
        continue;
      }
      key_cols[p].push_back(local_col);
      key_sources[p].emplace_back(pos[other], other_col);
    }
    if (key_cols[p].empty()) {
      return Status::Internal("frontier step without keys");
    }
    // Selection folding (mirrors the pipelined cursor): a probe step's
    // constant predicates become extra key components, so the index rejects
    // non-qualifying rows before they are enumerated instead of after. A
    // folded component's source slot is -1 and its `column` field carries
    // the constant ValueId. Order-preserving: the extended index's posting
    // list for (join key, constants) is exactly the plain lookup's posting
    // list with non-qualifying rows removed, in the same row order.
    for (const auto& s : query.selections()) {
      if (s.instance == inst) {
        key_cols[p].push_back(s.column);
        key_sources[p].emplace_back(-1, static_cast<ColumnId>(s.value));
      }
    }
  }

  // Exact extras check (subset_guard): the final join step streams instead of
  // materializing — each (prefix binding × index match) is projected, deduped
  // and guard-checked on the fly, so a violating candidate is dismissed at
  // its first extra tuple instead of after enumerating its full join. The
  // surviving-table contract is unchanged: the stream visits (driving row,
  // index match) pairs in exactly the order the materialize-then-project path
  // would, so a non-violating run returns a byte-identical table.
  const bool stream_last = subset_guard != nullptr && n >= 2;
  const size_t last_materialized = stream_last ? n - 1 : n;

  // Interface-column dedup (guard path only): a prefix binding influences the
  // rest of the run solely through its interface values — the columns later
  // steps' join keys read plus the prefix's projection columns. Bindings
  // equal on those produce identical projected-tuple sequences downstream, so
  // keeping only the first of each class preserves the distinct-tuple set AND
  // its first-occurrence order (a dropped binding's tuples were already
  // emitted, in order, by its earlier representative). This collapses
  // chain-join intermediates from row-pair counts to distinct-value counts —
  // the multiplicative shrink the extras check lives on. iface[p] is the
  // interface spec after step p, in (plan position, column) pairs; it depends
  // on the suffix, so it is appended to sigs[p] below (two candidates whose
  // suffixes read different interfaces must not alias).
  std::vector<std::vector<std::pair<int, ColumnId>>> iface;
  if (stream_last) {
    iface.resize(n);
    for (size_t p = 0; p + 1 < n; ++p) {
      auto& spec = iface[p];
      for (size_t q = p + 1; q < n; ++q) {
        for (const auto& [sp, sc] : key_sources[q]) {
          // sp < 0 is a folded selection constant, not a prefix column.
          if (sp >= 0 && sp <= static_cast<int>(p)) spec.emplace_back(sp, sc);
        }
      }
      for (const auto& proj : query.projections()) {
        if (pos[proj.instance] <= static_cast<int>(p)) {
          spec.emplace_back(pos[proj.instance], proj.column);
        }
      }
      // det: order-insensitive — canonicalized for signature stability.
      std::sort(spec.begin(), spec.end());
      spec.erase(std::unique(spec.begin(), spec.end()), spec.end());
    }
  }

  if (cache != nullptr) {
    // The guard path stores interface-deduped intermediates, the plain path
    // full ones; the leading flag keeps the two universes from aliasing.
    SubplanCache::Signature enc{kSubplanSigVersion, stream_last ? 1u : 0u};
    sigs.resize(n);
    for (size_t p = 0; p < n; ++p) {
      const InstanceId inst = order[p];
      enc.push_back(static_cast<uint32_t>(query.instance_table(inst)));
      // Join-key wiring in (source position, source column, local column)
      // triples, canonically sorted: candidates declaring the same joins in
      // a different order produce the same matches in the same order.
      std::vector<std::array<uint32_t, 3>> wiring;
      for (size_t k = 0; k < key_cols[p].size(); ++k) {
        // Folded selection components are omitted: they derive
        // deterministically from the selections encoded just below.
        if (key_sources[p][k].first < 0) continue;
        wiring.push_back({static_cast<uint32_t>(key_sources[p][k].first),
                          static_cast<uint32_t>(key_sources[p][k].second),
                          static_cast<uint32_t>(key_cols[p][k])});
      }
      std::sort(wiring.begin(), wiring.end());
      enc.push_back(static_cast<uint32_t>(wiring.size()));
      for (const auto& w : wiring) enc.insert(enc.end(), w.begin(), w.end());
      // Local predicates, canonically sorted.
      std::vector<std::pair<uint32_t, uint32_t>> sels, selfs;
      for (const auto& s : query.selections()) {
        if (s.instance == inst) sels.emplace_back(s.column, s.value);
      }
      for (const auto& j : query.joins()) {
        if (j.a == inst && j.b == inst) selfs.emplace_back(j.col_a, j.col_b);
      }
      std::sort(sels.begin(), sels.end());
      std::sort(selfs.begin(), selfs.end());
      enc.push_back(static_cast<uint32_t>(sels.size()));
      for (const auto& [c, v] : sels) {
        enc.push_back(c);
        enc.push_back(v);
      }
      enc.push_back(static_cast<uint32_t>(selfs.size()));
      for (const auto& [a, b] : selfs) {
        enc.push_back(a);
        enc.push_back(b);
      }
      sigs[p] = enc;
      if (stream_last) {
        sigs[p].push_back(static_cast<uint32_t>(iface[p].size()));
        for (const auto& [ip, ic] : iface[p]) {
          sigs[p].push_back(static_cast<uint32_t>(ip));
          sigs[p].push_back(static_cast<uint32_t>(ic));
        }
      }
    }
  }

  // Intermediate relation: a flat row-major matrix, one RowId per placed
  // instance per row. Flat (instead of a vector per row) so morsel workers
  // scan their driving slice cache-linearly and the merge is a memcpy.
  // Accessed through a pointer so a memoized prefix can be consumed in
  // place (pinned, immutable) without copying it out of the cache.
  // gov: charged — every locally appended row's bytes flow through the
  // per-morsel quantum flushes below (released by charge_guard); cache-
  // served rows stay charged to the cache's own "subplan-build" budget.
  std::vector<RowId> rows_storage;
  const std::vector<RowId>* rows = &rows_storage;
  size_t width = 1;
  size_t start_step = 1;
  SubplanCache::Handle prefix_pin;  // keeps a hit alive while we read it

  // Collapses rows_storage (the intermediate after step p) to the first
  // binding of each interface-value class. Serial over the merged buffer, so
  // the kept set is identical at any thread count / morsel size.
  auto iface_dedup = [&](size_t p) {
    if (!stream_last || p + 1 >= n) return;
    const auto& spec = iface[p];
    const size_t w = p + 1;
    const size_t count = rows_storage.size() / w;
    std::vector<const ValueId*> icol(spec.size());
    std::vector<int> ipos(spec.size());
    for (size_t j = 0; j < spec.size(); ++j) {
      ipos[j] = spec[j].first;
      icol[j] = db.table(query.instance_table(order[spec[j].first]))
                    .column(spec[j].second)
                    .data()
                    .data();
    }
    // gov: bounded — interface keys of an already-charged intermediate,
    // freed at scope exit; `kept` never outgrows the buffer it replaces.
    FlatTupleSet classes(spec.size(), count);
    std::vector<RowId> kept;
    std::vector<ValueId> ikey(spec.size());
    for (size_t i = 0; i < count; ++i) {
      // Adaptive bail-out: when the first sample of bindings is mostly
      // distinct classes, the pass cannot shrink the intermediate enough to
      // pay for itself — keep the buffer as is (duplicates are harmless:
      // downstream steps and the final dedup set absorb them). The decision
      // depends only on the data and the interface spec, so two executions
      // of the same prefix — live or via the subplan cache — agree on it.
      if (i == kDedupSampleRows && kept.size() / w > kDedupSampleRows / 2) {
        return;
      }
      const RowId* binding = rows_storage.data() + i * w;
      for (size_t j = 0; j < spec.size(); ++j) {
        ikey[j] = icol[j][binding[ipos[j]]];
      }
      if (classes.Insert(ikey.data())) {
        kept.insert(kept.end(), binding, binding + w);
      }
    }
    rows_storage.swap(kept);
  };

  // Probe the cache deepest-prefix-first. Prefixes after the last join step
  // are never cached (the full join is the result, not a reusable prefix).
  // The step-0 scan is: interface dedup collapses it to its distinct class
  // representatives, so convoy candidates sharing a start table skip both
  // the rescan and the dedup pass. Every probe counts toward the admission
  // threshold, so the second candidate of a convoy stores what the third
  // consumes.
  if (cache != nullptr && n >= 2) {
    for (int p = static_cast<int>(n) - 2; p >= 0; --p) {
      SubplanCache::Handle handle = cache->Lookup(sigs[p]);
      if (handle != nullptr) {
        prefix_pin = std::move(handle);
        rows = &prefix_pin->rows;
        width = prefix_pin->width;
        start_step = p + 1;
        // Replay the stored pre-filter enumeration count so the
        // intermediate-size-cap verdict is identical to a fresh run's.
        produced.store(prefix_pin->enumerated, std::memory_order_relaxed);
        if (run_stats != nullptr) ++run_stats->subplan_hits;
        break;
      }
    }
  }

  // Step 0: filter the start table's rows, one morsel-sized chunk at a time
  // (per-chunk interrupt polls; the scan itself is cheap). Skipped entirely
  // when a memoized prefix already covers it.
  if (prefix_pin == nullptr) {
    const Table& t0 = db.table(query.instance_table(order[0]));
    LocalFilters filters;
    filters.Build(db, query, order[0], /*include_selections=*/true);
    const SipFilters sip = resolve_sip(0);
    const size_t t0_rows = t0.num_rows();
    uint64_t pending = 0;
    uint64_t skips = 0;
    for (size_t lo = 0; lo < t0_rows; lo += morsel) {
      if (interrupt && interrupt()) return stop_status();
      const size_t hi = std::min(t0_rows, lo + morsel);
      for (RowId r = static_cast<RowId>(lo); r < hi; ++r) {
        if (!filters.Passes(r)) continue;
        if (!sip.Passes(r)) {
          ++skips;
          continue;
        }
        rows_storage.push_back(r);
        pending += sizeof(RowId);
      }
      if (governor != nullptr && pending >= kChargeQuantumBytes) {
        if (!governor->TryCharge(pending, "block-buffer")) {
          return Status::ResourceExhausted(
              "block evaluation exceeded the memory budget");
        }
        charged_bytes.fetch_add(pending, std::memory_order_relaxed);
        pending = 0;
      }
    }
    if (governor != nullptr && pending > 0) {
      if (!governor->TryCharge(pending, "block-buffer")) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
      charged_bytes.fetch_add(pending, std::memory_order_relaxed);
    }
    sip_skipped.fetch_add(skips, std::memory_order_relaxed);
    iface_dedup(0);
    // Offer the (possibly interface-deduped) scan like any other prefix;
    // WantsInsert gates the snapshot on admission, Insert charges
    // "subplan-build".
    if (cache != nullptr && n >= 2 && cache->WantsInsert(sigs[0])) {
      auto snap = std::make_shared<SubplanTable>();
      snap->rows = rows_storage;
      snap->width = 1;
      snap->enumerated = produced.load(std::memory_order_relaxed);
      snap->bytes =
          sizeof(SubplanTable) + snap->rows.capacity() * sizeof(RowId);
      (void)cache->Insert(sigs[0], std::move(snap));
    }
  }

  for (size_t p = start_step; p < last_materialized; ++p) {
    InstanceId inst = order[p];
    // Build side of the hash join: interruptible, so a deadline or Cancel()
    // lands inside a large index build instead of after it (DESIGN.md §13).
    const HashIndex* index_ptr = db.TryGetOrBuildIndex(
        query.instance_table(inst), key_cols[p], interrupt);
    if (index_ptr == nullptr) return stop_status();
    const HashIndex& index = *index_ptr;
    LocalFilters filters;
    filters.Build(db, query, inst, /*include_selections=*/false);
    const SipFilters sip = resolve_sip(p);
    // Key-source columns resolved to raw pointers once per step.
    const size_t kw = key_sources[p].size();
    std::vector<int> src_pos(kw);
    std::vector<const ValueId*> src_data(kw);
    std::vector<ValueId> src_const(kw, 0);
    for (size_t k = 0; k < kw; ++k) {
      src_pos[k] = key_sources[p][k].first;
      if (src_pos[k] < 0) {
        // Folded selection: a constant key component, no source column.
        src_data[k] = nullptr;
        src_const[k] = static_cast<ValueId>(key_sources[p][k].second);
        continue;
      }
      src_data[k] =
          db.table(query.instance_table(order[key_sources[p][k].first]))
              .column(key_sources[p][k].second)
              .data()
              .data();
    }

    // Composite-key SIP for the scalar kernel (the batched kernel amortizes
    // misses inside LookupBatch, and with memoization on these steps are
    // usually cache hits anyway). Output-neutral: only empty probes skip.
    const CompositeKeyFilter* key_filter =
        policy.use_sip && !policy.batch_probes && kw >= 2
            ? &db.GetOrBuildKeyFilter(query.instance_table(inst), key_cols[p])
            : nullptr;
    const std::vector<RowId>& drv = *rows;
    const size_t w = width;
    const size_t count = drv.size() / w;
    const size_t num_morsels = (count + morsel - 1) / morsel;
    // Per-morsel result buffers, merged in morsel-index order below — the
    // determinism backbone of DESIGN.md §12.
    // gov: charged — each worker flushes its buffer's bytes in 64 KB quanta
    // ("block-buffer"); released in full by charge_guard.
    std::vector<std::vector<RowId>> morsel_out(num_morsels);

    // One morsel: probe driving rows [m*morsel, ...) against the step index
    // and append passing (binding, match) rows to this morsel's own buffer.
    auto run_morsel = [&](size_t m) {
      if (stop.load(std::memory_order_relaxed) != kRunning) return;
      // Fault site "morsel-worker": fires once per morsel. An injected
      // alloc-fail models this worker's first refused quantum; cancel lands
      // at the interrupt poll just below (DESIGN.md §11).
      if (governor != nullptr &&
          governor->FaultPointAllocFails("morsel-worker")) {
        raise_stop(kStopMemory);
        return;
      }
      // Per-morsel interrupt poll: a deadline or Cancel() is honored within
      // one morsel of work, and never mid-merge.
      if (interrupt && interrupt()) {
        raise_stop(kStopInterrupt);
        return;
      }
      const size_t lo = m * morsel;
      const size_t hi = std::min(count, lo + morsel);
      std::vector<RowId>& out = morsel_out[m];
      uint64_t pending = 0;
      uint64_t skips = 0;
      auto flush = [&]() {
        if (governor == nullptr || pending == 0) return true;
        if (!governor->TryCharge(pending, "block-buffer")) return false;
        charged_bytes.fetch_add(pending, std::memory_order_relaxed);
        pending = 0;
        return true;
      };
      auto append_match = [&](size_t di, RowId match) {
        const RowId* binding = drv.data() + di * w;
        out.insert(out.end(), binding, binding + w);
        out.push_back(match);
        pending += (w + 1) * sizeof(RowId);
      };

      if (policy.batch_probes) {
        // Batched kernel: gather the morsel's keys columnarly, probe them
        // through one LookupBatch, then filter each key's match extent with
        // raw-pointer column compares. Visit order (driving row, then index
        // row order) is exactly the scalar kernel's.
        std::vector<ValueId> keys((hi - lo) * kw);
        for (size_t k = 0; k < kw; ++k) {
          const ValueId* col = src_data[k];
          const int sp = src_pos[k];
          if (sp < 0) {
            for (size_t i = lo; i < hi; ++i) {
              keys[(i - lo) * kw + k] = src_const[k];
            }
            continue;
          }
          for (size_t i = lo; i < hi; ++i) {
            keys[(i - lo) * kw + k] = col[drv[i * w + sp]];
          }
        }
        BatchMatches matches;
        size_t done = 0;
        const size_t nk = hi - lo;
        while (done < nk) {
          const size_t consumed = index.LookupBatch(
              keys.data() + done * kw, nk - done, &matches, kBatchExpandRowCap);
          const size_t before =
              produced.fetch_add(matches.rows.size(),
                                 std::memory_order_relaxed);
          if (before + matches.rows.size() > kMaxIntermediateRows) {
            raise_stop(kStopCap);
            return;
          }
          for (size_t i = 0; i < consumed; ++i) {
            const size_t di = lo + done + i;
            const RowId* mb = matches.begin_of(i);
            const RowId* me = matches.end_of(i);
            for (const RowId* r = mb; r < me; ++r) {
              if (!filters.Passes(*r)) continue;
              if (!sip.Passes(*r)) {
                ++skips;
                continue;
              }
              append_match(di, *r);
            }
            if (pending >= kChargeQuantumBytes && !flush()) {
              raise_stop(kStopMemory);
              return;
            }
          }
          done += consumed;
        }
      } else {
        // Scalar kernel: the legacy tuple-at-a-time probe loop (ablation
        // baseline), restricted to this morsel's driving slice.
        std::vector<ValueId> key(kw);
        for (size_t di = lo; di < hi; ++di) {
          for (size_t k = 0; k < kw; ++k) {
            key[k] = src_pos[k] < 0 ? src_const[k]
                                    : src_data[k][drv[di * w + src_pos[k]]];
          }
          if (key_filter != nullptr &&
              !key_filter->MayContain(key.data(), kw)) {
            ++skips;
            continue;
          }
          const std::vector<RowId>& match_rows =
              kw == 1 ? index.Lookup1(key[0]) : index.Lookup(key);
          const size_t before =
              produced.fetch_add(match_rows.size(), std::memory_order_relaxed);
          if (before + match_rows.size() > kMaxIntermediateRows) {
            raise_stop(kStopCap);
            return;
          }
          for (RowId match : match_rows) {
            if (!filters.Passes(match)) continue;
            if (!sip.Passes(match)) {
              ++skips;
              continue;
            }
            append_match(di, match);
          }
          if (pending >= kChargeQuantumBytes && !flush()) {
            raise_stop(kStopMemory);
            return;
          }
        }
      }
      if (skips > 0) sip_skipped.fetch_add(skips, std::memory_order_relaxed);
      if (!flush()) raise_stop(kStopMemory);
    };

    RunMorsels(policy.WantsParallel(count) ? policy.pool : nullptr,
               policy.intra_threads - 1, num_morsels, run_morsel);
    if (stop.load(std::memory_order_relaxed) != kRunning) {
      return stop_status();
    }

    // Merge in morsel-index order: the concatenation equals the scalar
    // serial traversal order, so the step output is byte-identical at any
    // thread count.
    size_t total = 0;
    for (const auto& buf : morsel_out) total += buf.size();
    if (total / (w + 1) > kMaxIntermediateRows) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the intermediate-size cap");
    }
    if (num_morsels == 1) {
      rows_storage = std::move(morsel_out[0]);
    } else {
      // gov: charged — replaced buffer; its bytes were charged above and the
      // cumulative total is released by charge_guard at exit.
      std::vector<RowId> merged;
      merged.reserve(total);
      for (auto& buf : morsel_out) {
        merged.insert(merged.end(), buf.begin(), buf.end());
      }
      rows_storage = std::move(merged);
    }
    rows = &rows_storage;
    prefix_pin.reset();  // a consumed hit is no longer read past its step
    width = w + 1;
    iface_dedup(p);

    // Offer the finished prefix to the cache (never the final step — the
    // full join is the result, not a reusable prefix). WantsInsert gates the
    // snapshot copy on admission, so one-shot prefixes cost nothing extra;
    // Insert re-checks and charges "subplan-build" (also the fault site).
    if (cache != nullptr && p + 1 < n && cache->WantsInsert(sigs[p])) {
      auto snap = std::make_shared<SubplanTable>();
      snap->rows = rows_storage;
      snap->width = width;
      snap->enumerated = produced.load(std::memory_order_relaxed);
      snap->bytes =
          sizeof(SubplanTable) + snap->rows.capacity() * sizeof(RowId);
      (void)cache->Insert(sigs[p], std::move(snap));
    }
  }

  // Project and dedupe: serial (first-occurrence order defines the output
  // table byte-for-byte), chunked per morsel for the interrupt poll.
  Table out(name, db.dictionary());
  std::unordered_set<std::string> used_names;
  std::vector<const ValueId*> proj_data(query.projections().size());
  std::vector<int> proj_pos(query.projections().size());
  for (size_t i = 0; i < query.projections().size(); ++i) {
    const auto& proj = query.projections()[i];
    const Column& src =
        db.table(query.instance_table(proj.instance)).column(proj.column);
    std::string col_name = src.name();
    while (used_names.count(col_name) > 0) col_name += "_";
    used_names.insert(col_name);
    FASTQRE_RETURN_NOT_OK(out.AddColumn(col_name, src.type()));
    proj_data[i] = src.data().data();
    proj_pos[i] = pos[proj.instance];
  }
  const std::vector<RowId>& fin = *rows;
  const size_t out_count = width == 0 ? 0 : fin.size() / width;
  // gov: charged — dedup-set bytes accumulate in `pending` below. On the
  // guard path the distinct-tuple set is bounded by the guard itself (the
  // first tuple past it ends the run), so size for that instead of the
  // worst-case row count.
  FlatTupleSet seen(query.projections().size(),
                    subset_guard != nullptr ? subset_guard->size() + 1
                                            : out_count);
  std::vector<ValueId> tuple(query.projections().size());
  uint64_t pending = 0;
  auto finish_stats = [&]() {
    if (run_stats == nullptr) return;
    run_stats->rows_enumerated = produced.load(std::memory_order_relaxed);
    run_stats->sip_rows_skipped = sip_skipped.load(std::memory_order_relaxed);
  };
  auto flush_pending = [&]() {
    if (governor == nullptr || pending == 0) return true;
    if (!governor->TryCharge(pending, "block-buffer")) return false;
    charged_bytes.fetch_add(pending, std::memory_order_relaxed);
    pending = 0;
    return true;
  };

  if (stream_last) {
    // Streamed final step (exact extras check): probe the last index one
    // prefix binding at a time and project/dedupe/guard-check each match
    // immediately. Serial — the early exit IS the optimization, and the
    // memoized prefix already absorbed the parallel work.
    const size_t p = n - 1;
    const HashIndex* index_ptr = db.TryGetOrBuildIndex(
        query.instance_table(order[p]), key_cols[p], interrupt);
    if (index_ptr == nullptr) return stop_status();
    const HashIndex& index = *index_ptr;
    LocalFilters filters;
    filters.Build(db, query, order[p], /*include_selections=*/false);
    const SipFilters sip = resolve_sip(p);
    const size_t kw = key_sources[p].size();
    std::vector<int> src_pos(kw);
    std::vector<const ValueId*> src_data(kw);
    std::vector<ValueId> src_const(kw, 0);
    for (size_t k = 0; k < kw; ++k) {
      src_pos[k] = key_sources[p][k].first;
      if (src_pos[k] < 0) {
        // Folded selection: a constant key component, no source column.
        src_data[k] = nullptr;
        src_const[k] = static_cast<ValueId>(key_sources[p][k].second);
        continue;
      }
      src_data[k] =
          db.table(query.instance_table(order[key_sources[p][k].first]))
              .column(key_sources[p][k].second)
              .data()
              .data();
    }
    // Composite-key SIP (kw >= 2 only; single keys go through Lookup1's flat
    // map, which a bit test cannot beat): most prefix bindings of a convoy
    // candidate have no partner in the final table — on foreign-key data
    // every component value exists, but the combination does not — so a
    // cache-resident bit test rejects the miss before the hash-map probe.
    // Output-neutral by construction: only provably-empty probes are
    // skipped, and an empty probe contributes nothing to `produced` either.
    const CompositeKeyFilter* key_filter =
        policy.use_sip && kw >= 2
            ? &db.GetOrBuildKeyFilter(query.instance_table(order[p]),
                                      key_cols[p])
            : nullptr;
    const int final_pos = static_cast<int>(p);
    const size_t count = width == 0 ? 0 : fin.size() / width;
    // When no projection reads the probed instance, every match of one
    // binding projects to the same tuple: the probe is an existence test.
    // Then (a) a binding whose tuple was already emitted is skipped without
    // probing — its matches cannot produce anything new — and (b) the match
    // loop ends at the first passing match. The emitted sequence is
    // unchanged: skipped bindings only re-produce duplicates, which the
    // dedup set would have swallowed anyway.
    bool final_has_proj = false;
    for (int sp : proj_pos) {
      if (sp == final_pos) final_has_proj = true;
    }
    std::vector<ValueId> key(kw);
    uint64_t skips = 0;
    for (size_t lo = 0; lo < count; lo += morsel) {
      if (interrupt && interrupt()) {
        return Status::ResourceExhausted("block evaluation interrupted");
      }
      const size_t hi = std::min(count, lo + morsel);
      for (size_t di = lo; di < hi; ++di) {
        const RowId* binding = fin.data() + di * width;
        if (!final_has_proj) {
          for (size_t i = 0; i < tuple.size(); ++i) {
            tuple[i] = proj_data[i][binding[proj_pos[i]]];
          }
          if (seen.Contains(tuple.data())) continue;  // existence already known
        }
        for (size_t k = 0; k < kw; ++k) {
          key[k] =
              src_pos[k] < 0 ? src_const[k] : src_data[k][binding[src_pos[k]]];
        }
        if (key_filter != nullptr && !key_filter->MayContain(key.data(), kw)) {
          ++skips;
          continue;
        }
        const std::vector<RowId>& match_rows =
            kw == 1 ? index.Lookup1(key[0]) : index.Lookup(key);
        const size_t before =
            produced.fetch_add(match_rows.size(), std::memory_order_relaxed);
        if (before + match_rows.size() > kMaxIntermediateRows) {
          return Status::ResourceExhausted(
              "block evaluation exceeded the intermediate-size cap");
        }
        for (RowId match : match_rows) {
          if (!filters.Passes(match)) continue;
          if (!sip.Passes(match)) {
            ++skips;
            continue;
          }
          if (final_has_proj) {
            for (size_t i = 0; i < tuple.size(); ++i) {
              const int sp = proj_pos[i];
              tuple[i] = proj_data[i][sp == final_pos ? match : binding[sp]];
            }
          }
          if (seen.Insert(tuple.data())) {
            if (subset_guard->count(tuple) == 0) {
              *subset_violated = true;
              sip_skipped.fetch_add(skips, std::memory_order_relaxed);
              finish_stats();
              return out;
            }
            out.AppendRowIds(tuple);
            pending += 2 * tuple.size() * sizeof(ValueId) + 48;
          }
          if (!final_has_proj) break;  // one passing match proves existence
        }
      }
      if (pending >= kChargeQuantumBytes && !flush_pending()) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
    }
    if (!flush_pending()) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the memory budget");
    }
    sip_skipped.fetch_add(skips, std::memory_order_relaxed);
    finish_stats();
    return out;
  }

  for (size_t lo = 0; lo < out_count; lo += morsel) {
    if (interrupt && interrupt()) {
      return Status::ResourceExhausted("block evaluation interrupted");
    }
    const size_t hi = std::min(out_count, lo + morsel);
    for (size_t bi = lo; bi < hi; ++bi) {
      const RowId* binding = fin.data() + bi * width;
      for (size_t i = 0; i < tuple.size(); ++i) {
        tuple[i] = proj_data[i][binding[proj_pos[i]]];
      }
      if (seen.Insert(tuple.data())) {
        if (subset_guard != nullptr && subset_guard->count(tuple) == 0) {
          // Exact extras check: the candidate provably produces a tuple
          // outside the guard set; no need to finish the projection.
          *subset_violated = true;
          finish_stats();
          return out;
        }
        out.AppendRowIds(tuple);
        // Node + stored tuple + output-row estimate.
        pending += 2 * tuple.size() * sizeof(ValueId) + 48;
      }
    }
    if (governor != nullptr && pending >= kChargeQuantumBytes) {
      if (!governor->TryCharge(pending, "block-buffer")) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
      charged_bytes.fetch_add(pending, std::memory_order_relaxed);
      pending = 0;
    }
  }
  if (governor != nullptr && pending > 0) {
    if (!governor->TryCharge(pending, "block-buffer")) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the memory budget");
    }
    charged_bytes.fetch_add(pending, std::memory_order_relaxed);
  }
  finish_stats();
  return out;
}

}  // namespace fastqre
