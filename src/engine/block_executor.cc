#include "engine/block_executor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/hash.h"
#include "common/resource_governor.h"
#include "common/thread_pool.h"
#include "engine/compare.h"
#include "engine/executor.h"

namespace fastqre {

namespace {

// Block-buffer bytes are accumulated locally (per morsel worker) and flushed
// to the governor in quanta, keeping the accounting cost off the per-row hot
// path.
constexpr uint64_t kChargeQuantumBytes = 64 * 1024;

// Hard cap on intermediate materialization: pathological candidate queries
// can otherwise exhaust memory before any time budget fires. Enforced
// exactly at merge time (so the verdict is identical in every execution
// configuration) and approximately inside each worker (so no single morsel
// materializes unboundedly past it).
constexpr size_t kMaxIntermediateRows = 20'000'000;

// Rows the batched kernel expands per LookupBatch call before filtering and
// appending: bounds the reusable match scratch even for keys with huge
// posting lists.
constexpr size_t kBatchExpandRowCap = 64 * 1024;

// Why the shared stop flag fired; first cause wins (CAS). Values double as
// merge-time status codes.
enum : int {
  kRunning = 0,
  kStopInterrupt = 1,
  kStopMemory = 2,
  kStopCap = 3,
};

// Releases every byte this block evaluation charged, on all return paths
// (the intermediates are freed when the function's locals unwind). Workers
// fold their flushed quanta into `charged` with relaxed adds; the final
// load happens after every worker joined, so the total is exact.
struct BlockChargeGuard {
  const std::shared_ptr<ResourceGovernor>& governor;
  std::atomic<uint64_t>& charged;
  ~BlockChargeGuard() {
    uint64_t total = charged.load(std::memory_order_relaxed);
    if (governor != nullptr && total > 0) governor->Release(total);
  }
};

// Same-instance filters (self joins, selections) of one plan step, resolved
// to raw column pointers once so the per-row check is a few loads.
struct LocalFilters {
  std::vector<std::pair<const ValueId*, const ValueId*>> self_eq;
  std::vector<std::pair<const ValueId*, ValueId>> sel_eq;

  void Build(const Database& db, const PJQuery& query, InstanceId inst) {
    const Table& t = db.table(query.instance_table(inst));
    for (const auto& j : query.joins()) {
      if (j.a == inst && j.b == inst) {
        self_eq.emplace_back(t.column(j.col_a).data().data(),
                             t.column(j.col_b).data().data());
      }
    }
    for (const auto& s : query.selections()) {
      if (s.instance == inst) {
        sel_eq.emplace_back(t.column(s.column).data().data(), s.value);
      }
    }
  }

  bool Passes(RowId r) const {
    for (const auto& [a, b] : self_eq) {
      if (a[r] != b[r]) return false;
    }
    for (const auto& [col, val] : sel_eq) {
      if (col[r] != val) return false;
    }
    return true;
  }
};

}  // namespace

Result<Table> ExecuteBlock(const Database& db, const PJQuery& query,
                           const std::string& name,
                           std::function<bool()> interrupt,
                           const ExecPolicy& policy) {
  const size_t n = query.num_instances();
  if (n == 0) return Status::InvalidArgument("query has no instances");
  if (!query.IsConnected()) {
    return Status::InvalidArgument("query graph is disconnected (cross product)");
  }
  if (query.projections().empty()) {
    return Status::InvalidArgument("query has no projection columns");
  }
  const size_t morsel = policy.MorselSize();

  // Governor accounting for the materialized intermediates (DESIGN.md §11).
  // Cumulative across join steps — a conservative overestimate of the peak —
  // and fully released on exit via the guard below. A refused charge
  // dismisses this candidate only (the validator maps candidate-local
  // ResourceExhausted to kError); it never aborts the whole search.
  const std::shared_ptr<ResourceGovernor> governor = db.governor();
  std::atomic<uint64_t> charged_bytes{0};
  BlockChargeGuard charge_guard{governor, charged_bytes};

  // Shared stop flag: set by whichever morsel first observes an interrupt, a
  // refused charge, or the intermediate cap; later morsels exit immediately.
  // Relaxed suffices — the flag guards no data (per-morsel buffers are
  // published by the RunMorsels join) and the first-cause CAS is exact.
  std::atomic<int> stop{kRunning};
  auto raise_stop = [&stop](int cause) {
    int expected = kRunning;
    (void)stop.compare_exchange_strong(expected, cause,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed);
  };
  auto stop_status = [&stop]() {
    switch (stop.load(std::memory_order_relaxed)) {
      case kStopMemory:
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      case kStopCap:
        return Status::ResourceExhausted(
            "block evaluation exceeded the intermediate-size cap");
      default:
        return Status::ResourceExhausted("block evaluation interrupted");
    }
  };
  // Approximate running total of appended intermediate rows, for the
  // in-worker cap guard; the exact (configuration-independent) cap verdict
  // is re-checked on the merged total after each step.
  std::atomic<size_t> produced{0};

  // Left-deep join order: start anywhere, repeatedly attach an instance
  // adjacent to the placed set (any order is correct; smallest-table-first
  // keeps intermediates modest without changing the block semantics).
  std::vector<std::vector<size_t>> adj(n);
  for (size_t ji = 0; ji < query.joins().size(); ++ji) {
    const auto& j = query.joins()[ji];
    if (j.a == j.b) continue;
    adj[j.a].push_back(ji);
    adj[j.b].push_back(ji);
  }
  std::vector<int> pos(n, -1);
  std::vector<InstanceId> order{0};
  pos[0] = 0;
  while (order.size() < n) {
    InstanceId best = static_cast<InstanceId>(n);
    size_t best_rows = 0;
    for (InstanceId v = 0; v < n; ++v) {
      if (pos[v] >= 0) continue;
      bool frontier = false;
      for (size_t ji : adj[v]) {
        const auto& j = query.joins()[ji];
        InstanceId other = (j.a == v) ? j.b : j.a;
        if (pos[other] >= 0) frontier = true;
      }
      if (!frontier) continue;
      size_t rows = db.table(query.instance_table(v)).num_rows();
      if (best == n || rows < best_rows) {
        best = v;
        best_rows = rows;
      }
    }
    if (best == n) return Status::Internal("connected query not traversable");
    pos[best] = static_cast<int>(order.size());
    order.push_back(best);
  }

  // Intermediate relation: a flat row-major matrix, one RowId per placed
  // instance per row. Flat (instead of a vector per row) so morsel workers
  // scan their driving slice cache-linearly and the merge is a memcpy.
  // gov: charged — every appended row's bytes flow through the per-morsel
  // quantum flushes below; released in full by charge_guard.
  std::vector<RowId> rows;
  size_t width = 1;

  // Step 0: filter the start table's rows, one morsel-sized chunk at a time
  // (per-chunk interrupt polls; the scan itself is cheap).
  {
    const Table& t0 = db.table(query.instance_table(order[0]));
    LocalFilters filters;
    filters.Build(db, query, order[0]);
    const size_t t0_rows = t0.num_rows();
    uint64_t pending = 0;
    for (size_t lo = 0; lo < t0_rows; lo += morsel) {
      if (interrupt && interrupt()) return stop_status();
      const size_t hi = std::min(t0_rows, lo + morsel);
      for (RowId r = static_cast<RowId>(lo); r < hi; ++r) {
        if (filters.Passes(r)) {
          rows.push_back(r);
          pending += sizeof(RowId);
        }
      }
      if (governor != nullptr && pending >= kChargeQuantumBytes) {
        if (!governor->TryCharge(pending, "block-buffer")) {
          return Status::ResourceExhausted(
              "block evaluation exceeded the memory budget");
        }
        charged_bytes.fetch_add(pending, std::memory_order_relaxed);
        pending = 0;
      }
    }
    if (governor != nullptr && pending > 0) {
      if (!governor->TryCharge(pending, "block-buffer")) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
      charged_bytes.fetch_add(pending, std::memory_order_relaxed);
    }
  }

  for (size_t p = 1; p < n; ++p) {
    InstanceId inst = order[p];
    // Key columns of `inst` from joins whose other endpoint is placed.
    std::vector<ColumnId> key_cols;
    std::vector<std::pair<int, ColumnId>> key_sources;  // (plan pos, column)
    for (const auto& j : query.joins()) {
      if (j.a == j.b) continue;
      InstanceId other;
      ColumnId local_col, other_col;
      if (j.a == inst && pos[j.b] >= 0 && pos[j.b] < static_cast<int>(p)) {
        other = j.b;
        local_col = j.col_a;
        other_col = j.col_b;
      } else if (j.b == inst && pos[j.a] >= 0 && pos[j.a] < static_cast<int>(p)) {
        other = j.a;
        local_col = j.col_b;
        other_col = j.col_a;
      } else {
        continue;
      }
      key_cols.push_back(local_col);
      key_sources.emplace_back(pos[other], other_col);
    }
    if (key_cols.empty()) return Status::Internal("frontier step without keys");

    const HashIndex& index = db.GetOrBuildIndex(query.instance_table(inst),
                                                key_cols);
    LocalFilters filters;
    filters.Build(db, query, inst);
    // Key-source columns resolved to raw pointers once per step.
    const size_t kw = key_sources.size();
    std::vector<int> src_pos(kw);
    std::vector<const ValueId*> src_data(kw);
    for (size_t k = 0; k < kw; ++k) {
      src_pos[k] = key_sources[k].first;
      src_data[k] = db.table(query.instance_table(order[key_sources[k].first]))
                        .column(key_sources[k].second)
                        .data()
                        .data();
    }

    const size_t w = width;
    const size_t count = rows.size() / w;
    const size_t num_morsels = (count + morsel - 1) / morsel;
    // Per-morsel result buffers, merged in morsel-index order below — the
    // determinism backbone of DESIGN.md §12.
    // gov: charged — each worker flushes its buffer's bytes in 64 KB quanta
    // ("block-buffer"); released in full by charge_guard.
    std::vector<std::vector<RowId>> morsel_out(num_morsels);

    // One morsel: probe driving rows [m*morsel, ...) against the step index
    // and append passing (binding, match) rows to this morsel's own buffer.
    auto run_morsel = [&](size_t m) {
      if (stop.load(std::memory_order_relaxed) != kRunning) return;
      // Fault site "morsel-worker": fires once per morsel. An injected
      // alloc-fail models this worker's first refused quantum; cancel lands
      // at the interrupt poll just below (DESIGN.md §11).
      if (governor != nullptr &&
          governor->FaultPointAllocFails("morsel-worker")) {
        raise_stop(kStopMemory);
        return;
      }
      // Per-morsel interrupt poll: a deadline or Cancel() is honored within
      // one morsel of work, and never mid-merge.
      if (interrupt && interrupt()) {
        raise_stop(kStopInterrupt);
        return;
      }
      const size_t lo = m * morsel;
      const size_t hi = std::min(count, lo + morsel);
      std::vector<RowId>& out = morsel_out[m];
      uint64_t pending = 0;
      auto flush = [&]() {
        if (governor == nullptr || pending == 0) return true;
        if (!governor->TryCharge(pending, "block-buffer")) return false;
        charged_bytes.fetch_add(pending, std::memory_order_relaxed);
        pending = 0;
        return true;
      };
      auto append_match = [&](size_t di, RowId match) {
        const RowId* binding = rows.data() + di * w;
        out.insert(out.end(), binding, binding + w);
        out.push_back(match);
        pending += (w + 1) * sizeof(RowId);
      };

      if (policy.batch_probes) {
        // Batched kernel: gather the morsel's keys columnarly, probe them
        // through one LookupBatch, then filter each key's match extent with
        // raw-pointer column compares. Visit order (driving row, then index
        // row order) is exactly the scalar kernel's.
        std::vector<ValueId> keys((hi - lo) * kw);
        for (size_t k = 0; k < kw; ++k) {
          const ValueId* col = src_data[k];
          const int sp = src_pos[k];
          for (size_t i = lo; i < hi; ++i) {
            keys[(i - lo) * kw + k] = col[rows[i * w + sp]];
          }
        }
        BatchMatches matches;
        size_t done = 0;
        const size_t nk = hi - lo;
        while (done < nk) {
          const size_t consumed = index.LookupBatch(
              keys.data() + done * kw, nk - done, &matches, kBatchExpandRowCap);
          const size_t before =
              produced.fetch_add(matches.rows.size(),
                                 std::memory_order_relaxed);
          if (before + matches.rows.size() > kMaxIntermediateRows) {
            raise_stop(kStopCap);
            return;
          }
          for (size_t i = 0; i < consumed; ++i) {
            const size_t di = lo + done + i;
            const RowId* mb = matches.begin_of(i);
            const RowId* me = matches.end_of(i);
            for (const RowId* r = mb; r < me; ++r) {
              if (!filters.Passes(*r)) continue;
              append_match(di, *r);
            }
            if (pending >= kChargeQuantumBytes && !flush()) {
              raise_stop(kStopMemory);
              return;
            }
          }
          done += consumed;
        }
      } else {
        // Scalar kernel: the legacy tuple-at-a-time probe loop (ablation
        // baseline), restricted to this morsel's driving slice.
        std::vector<ValueId> key(kw);
        for (size_t di = lo; di < hi; ++di) {
          for (size_t k = 0; k < kw; ++k) {
            key[k] = src_data[k][rows[di * w + src_pos[k]]];
          }
          const std::vector<RowId>& match_rows =
              kw == 1 ? index.Lookup1(key[0]) : index.Lookup(key);
          const size_t before =
              produced.fetch_add(match_rows.size(), std::memory_order_relaxed);
          if (before + match_rows.size() > kMaxIntermediateRows) {
            raise_stop(kStopCap);
            return;
          }
          for (RowId match : match_rows) {
            if (!filters.Passes(match)) continue;
            append_match(di, match);
          }
          if (pending >= kChargeQuantumBytes && !flush()) {
            raise_stop(kStopMemory);
            return;
          }
        }
      }
      if (!flush()) raise_stop(kStopMemory);
    };

    RunMorsels(policy.WantsParallel(count) ? policy.pool : nullptr,
               policy.intra_threads - 1, num_morsels, run_morsel);
    if (stop.load(std::memory_order_relaxed) != kRunning) {
      return stop_status();
    }

    // Merge in morsel-index order: the concatenation equals the scalar
    // serial traversal order, so the step output is byte-identical at any
    // thread count.
    size_t total = 0;
    for (const auto& buf : morsel_out) total += buf.size();
    if (total / (w + 1) > kMaxIntermediateRows) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the intermediate-size cap");
    }
    if (num_morsels == 1) {
      rows = std::move(morsel_out[0]);
    } else {
      // gov: charged — replaced buffer; its bytes were charged above and the
      // cumulative total is released by charge_guard at exit.
      std::vector<RowId> merged;
      merged.reserve(total);
      for (auto& buf : morsel_out) {
        merged.insert(merged.end(), buf.begin(), buf.end());
      }
      rows = std::move(merged);
    }
    width = w + 1;
  }

  // Project and dedupe: serial (first-occurrence order defines the output
  // table byte-for-byte), chunked per morsel for the interrupt poll.
  Table out(name, db.dictionary());
  std::unordered_set<std::string> used_names;
  std::vector<const ValueId*> proj_data(query.projections().size());
  std::vector<int> proj_pos(query.projections().size());
  for (size_t i = 0; i < query.projections().size(); ++i) {
    const auto& proj = query.projections()[i];
    const Column& src =
        db.table(query.instance_table(proj.instance)).column(proj.column);
    std::string col_name = src.name();
    while (used_names.count(col_name) > 0) col_name += "_";
    used_names.insert(col_name);
    FASTQRE_RETURN_NOT_OK(out.AddColumn(col_name, src.type()));
    proj_data[i] = src.data().data();
    proj_pos[i] = pos[proj.instance];
  }
  // gov: charged — dedup-set bytes accumulate in `pending` below.
  TupleSet seen;
  const size_t out_count = width == 0 ? 0 : rows.size() / width;
  seen.reserve(out_count);
  std::vector<ValueId> tuple(query.projections().size());
  uint64_t pending = 0;
  for (size_t lo = 0; lo < out_count; lo += morsel) {
    if (interrupt && interrupt()) {
      return Status::ResourceExhausted("block evaluation interrupted");
    }
    const size_t hi = std::min(out_count, lo + morsel);
    for (size_t bi = lo; bi < hi; ++bi) {
      const RowId* binding = rows.data() + bi * width;
      for (size_t i = 0; i < tuple.size(); ++i) {
        tuple[i] = proj_data[i][binding[proj_pos[i]]];
      }
      if (seen.insert(tuple).second) {
        out.AppendRowIds(tuple);
        // Node + stored tuple + output-row estimate.
        pending += 2 * tuple.size() * sizeof(ValueId) + 48;
      }
    }
    if (governor != nullptr && pending >= kChargeQuantumBytes) {
      if (!governor->TryCharge(pending, "block-buffer")) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
      charged_bytes.fetch_add(pending, std::memory_order_relaxed);
      pending = 0;
    }
  }
  if (governor != nullptr && pending > 0) {
    if (!governor->TryCharge(pending, "block-buffer")) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the memory budget");
    }
    charged_bytes.fetch_add(pending, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace fastqre
