#include "engine/block_executor.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/resource_governor.h"
#include "engine/compare.h"
#include "engine/executor.h"

namespace fastqre {

namespace {

// Block-buffer bytes are accumulated locally and flushed to the governor in
// quanta, keeping the accounting cost off the per-row hot path.
constexpr uint64_t kChargeQuantumBytes = 64 * 1024;

// Releases every byte this block evaluation charged, on all return paths
// (the intermediates are freed when the function's locals unwind).
struct BlockChargeGuard {
  const std::shared_ptr<ResourceGovernor>& governor;
  uint64_t& charged;
  ~BlockChargeGuard() {
    if (governor != nullptr && charged > 0) governor->Release(charged);
  }
};

}  // namespace

Result<Table> ExecuteBlock(const Database& db, const PJQuery& query,
                           const std::string& name,
                           std::function<bool()> interrupt) {
  uint64_t work = 0;
  auto interrupted = [&]() {
    return (++work & kInterruptPollMask) == 0 && interrupt && interrupt();
  };
  // Governor accounting for the materialized intermediates (DESIGN.md §11).
  // Cumulative across join steps — a conservative overestimate of the peak —
  // and fully released on exit via the guard below. A refused charge
  // dismisses this candidate only (the validator maps candidate-local
  // ResourceExhausted to kError); it never aborts the whole search.
  const std::shared_ptr<ResourceGovernor> governor = db.governor();
  uint64_t charged_bytes = 0;
  uint64_t pending_bytes = 0;
  BlockChargeGuard charge_guard{governor, charged_bytes};
  auto charge_pending = [&]() {
    if (governor == nullptr || pending_bytes == 0) return true;
    if (!governor->TryCharge(pending_bytes, "block-buffer")) return false;
    charged_bytes += pending_bytes;
    pending_bytes = 0;
    return true;
  };
  // Hard cap on intermediate materialization: pathological candidate
  // queries can otherwise exhaust memory before any time budget fires.
  constexpr size_t kMaxIntermediateRows = 20'000'000;
  const size_t n = query.num_instances();
  if (n == 0) return Status::InvalidArgument("query has no instances");
  if (!query.IsConnected()) {
    return Status::InvalidArgument("query graph is disconnected (cross product)");
  }
  if (query.projections().empty()) {
    return Status::InvalidArgument("query has no projection columns");
  }

  // Left-deep join order: start anywhere, repeatedly attach an instance
  // adjacent to the placed set (any order is correct; smallest-table-first
  // keeps intermediates modest without changing the block semantics).
  std::vector<std::vector<size_t>> adj(n);
  for (size_t ji = 0; ji < query.joins().size(); ++ji) {
    const auto& j = query.joins()[ji];
    if (j.a == j.b) continue;
    adj[j.a].push_back(ji);
    adj[j.b].push_back(ji);
  }
  std::vector<int> pos(n, -1);
  std::vector<InstanceId> order{0};
  pos[0] = 0;
  while (order.size() < n) {
    InstanceId best = static_cast<InstanceId>(n);
    size_t best_rows = 0;
    for (InstanceId v = 0; v < n; ++v) {
      if (pos[v] >= 0) continue;
      bool frontier = false;
      for (size_t ji : adj[v]) {
        const auto& j = query.joins()[ji];
        InstanceId other = (j.a == v) ? j.b : j.a;
        if (pos[other] >= 0) frontier = true;
      }
      if (!frontier) continue;
      size_t rows = db.table(query.instance_table(v)).num_rows();
      if (best == n || rows < best_rows) {
        best = v;
        best_rows = rows;
      }
    }
    if (best == n) return Status::Internal("connected query not traversable");
    pos[best] = static_cast<int>(order.size());
    order.push_back(best);
  }

  // Per-instance filters (same-instance joins, selections).
  auto passes_local = [&](InstanceId inst, RowId row) {
    const Table& t = db.table(query.instance_table(inst));
    for (const auto& j : query.joins()) {
      if (j.a == inst && j.b == inst &&
          t.column(j.col_a).at(row) != t.column(j.col_b).at(row)) {
        return false;
      }
    }
    for (const auto& s : query.selections()) {
      if (s.instance == inst && t.column(s.column).at(row) != s.value) {
        return false;
      }
    }
    return true;
  };

  // Materialize the intermediate relation in plan order; each intermediate
  // row is one RowId per placed instance.
  // gov: charged — intermediate buffer bytes flushed via charge_pending().
  std::vector<std::vector<RowId>> rows;
  {
    const Table& t0 = db.table(query.instance_table(order[0]));
    for (RowId r = 0; r < t0.num_rows(); ++r) {
      if (passes_local(order[0], r)) {
        rows.push_back({r});
        pending_bytes += sizeof(std::vector<RowId>) + sizeof(RowId);
      }
    }
    if (!charge_pending()) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the memory budget");
    }
  }
  for (size_t p = 1; p < n; ++p) {
    InstanceId inst = order[p];
    // Key columns of `inst` from joins whose other endpoint is placed.
    std::vector<ColumnId> key_cols;
    std::vector<std::pair<int, ColumnId>> key_sources;  // (plan pos, column)
    for (const auto& j : query.joins()) {
      if (j.a == j.b) continue;
      InstanceId other;
      ColumnId local_col, other_col;
      if (j.a == inst && pos[j.b] >= 0 && pos[j.b] < static_cast<int>(p)) {
        other = j.b;
        local_col = j.col_a;
        other_col = j.col_b;
      } else if (j.b == inst && pos[j.a] >= 0 && pos[j.a] < static_cast<int>(p)) {
        other = j.a;
        local_col = j.col_b;
        other_col = j.col_a;
      } else {
        continue;
      }
      key_cols.push_back(local_col);
      key_sources.emplace_back(pos[other], other_col);
    }
    if (key_cols.empty()) return Status::Internal("frontier step without keys");

    const HashIndex& index = db.GetOrBuildIndex(query.instance_table(inst),
                                                key_cols);
    // gov: charged — per-row bytes accumulate in pending_bytes below.
    std::vector<std::vector<RowId>> next;
    std::vector<ValueId> key(key_cols.size());
    for (const auto& binding : rows) {
      for (size_t k = 0; k < key_sources.size(); ++k) {
        const auto& [src_pos, src_col] = key_sources[k];
        const Table& src_table =
            db.table(query.instance_table(order[src_pos]));
        key[k] = src_table.column(src_col).at(binding[src_pos]);
      }
      const std::vector<RowId>& matches =
          key.size() == 1 ? index.Lookup1(key[0]) : index.Lookup(key);
      for (RowId match : matches) {
        if (interrupted()) {
          return Status::ResourceExhausted("block evaluation interrupted");
        }
        if (!passes_local(inst, match)) continue;
        if (next.size() >= kMaxIntermediateRows) {
          return Status::ResourceExhausted(
              "block evaluation exceeded the intermediate-size cap");
        }
        std::vector<RowId> extended = binding;
        extended.push_back(match);
        next.push_back(std::move(extended));
        pending_bytes +=
            sizeof(std::vector<RowId>) + (p + 1) * sizeof(RowId);
        if (pending_bytes >= kChargeQuantumBytes && !charge_pending()) {
          return Status::ResourceExhausted(
              "block evaluation exceeded the memory budget");
        }
      }
    }
    if (!charge_pending()) {
      return Status::ResourceExhausted(
          "block evaluation exceeded the memory budget");
    }
    rows = std::move(next);
  }

  // Project and dedupe.
  Table out(name, db.dictionary());
  std::unordered_set<std::string> used_names;
  for (const auto& proj : query.projections()) {
    const Column& src =
        db.table(query.instance_table(proj.instance)).column(proj.column);
    std::string col_name = src.name();
    while (used_names.count(col_name) > 0) col_name += "_";
    used_names.insert(col_name);
    FASTQRE_RETURN_NOT_OK(out.AddColumn(col_name, src.type()));
  }
  // gov: charged — dedup-set bytes accumulate in pending_bytes below.
  TupleSet seen;
  seen.reserve(rows.size());
  std::vector<ValueId> tuple(query.projections().size());
  for (const auto& binding : rows) {
    if (interrupted()) {
      return Status::ResourceExhausted("block evaluation interrupted");
    }
    for (size_t i = 0; i < query.projections().size(); ++i) {
      const auto& proj = query.projections()[i];
      tuple[i] = db.table(query.instance_table(proj.instance))
                     .column(proj.column)
                     .at(binding[pos[proj.instance]]);
    }
    if (seen.insert(tuple).second) {
      out.AppendRowIds(tuple);
      // Node + stored tuple + output-row estimate.
      pending_bytes += 2 * tuple.size() * sizeof(ValueId) + 48;
      if (pending_bytes >= kChargeQuantumBytes && !charge_pending()) {
        return Status::ResourceExhausted(
            "block evaluation exceeded the memory budget");
      }
    }
  }
  return out;
}

}  // namespace fastqre
