// SQL parser for the project-join fragment FastQRE emits and consumes:
//
//   SELECT <alias>.<column> [, ...]
//   FROM <table> [<alias>] [, ...]
//   [WHERE <alias>.<column> = <alias>.<column | literal> [AND ...]]
//
// Keywords are case-insensitive; identifiers are case-sensitive and resolved
// against a Database. Equality with a literal becomes a PJQuery selection
// (the probing mechanism's representation); equality between column
// references becomes a join (or a same-instance filter). This is exactly the
// inverse of PJQuery::ToSql, so recovered queries can be round-tripped,
// edited as text, and re-executed.
#pragma once

#include <string>

#include "common/result.h"
#include "engine/query.h"
#include "storage/database.h"

namespace fastqre {

/// \brief Parses `sql` into a PJQuery against `db`. Returns InvalidArgument
/// with a position-annotated message on syntax errors and NotFound for
/// unknown tables/columns/aliases.
Result<PJQuery> ParsePJQuery(const Database& db, const std::string& sql);

}  // namespace fastqre
